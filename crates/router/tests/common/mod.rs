//! Shared in-process fleet fixture for the router integration tests:
//! N real `st-serve` replicas on ephemeral loopback ports, all serving
//! the same checkpoint, fronted by one `st-router`.

// Each test binary uses a different slice of the fixture.
#![allow(dead_code)]

use st_data::{synth, CityId, CrossingCitySplit, Dataset};
use st_router::{
    BreakerConfig, Fleet, FleetConfig, PartitionMode, ReplicaId, RouteKey, Router, RouterConfig,
    RouterServer,
};
use st_serve::fault::FaultInjector;
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_transrec_core::{ModelConfig, STTransRec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh scratch directory per test (std-only: no tempfile crate).
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "st-router-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One replica slot: the live server plus its chaos hooks. `server` is
/// an `Option` so tests can kill a replica and later rejoin it.
pub struct ReplicaSlot {
    pub server: Option<Server>,
    pub injector: Arc<FaultInjector>,
}

/// N replicas + fleet + router, all in-process on loopback.
pub struct FleetFixture {
    pub dataset: Arc<Dataset>,
    pub split: Arc<CrossingCitySplit>,
    pub ckpt: PathBuf,
    pub oracle: STTransRec,
    pub replicas: Vec<ReplicaSlot>,
    pub fleet: Arc<Fleet>,
    pub router: Option<RouterServer>,
    pub serve_config: ServeConfig,
}

/// Breaker threshold used by every fixture (small so dark windows are
/// short, large enough that a single stale connection never trips it).
pub const BREAKER_THRESHOLD: u32 = 3;
/// Probe failures before a replica is marked down.
pub const DOWN_AFTER: u32 = 2;

impl FleetFixture {
    /// Builds a fleet of `n` replicas under `serve_config` (addr is
    /// overridden per replica). The breaker cooldown is effectively
    /// infinite: recovery happens via probes and `force_half_open`,
    /// keeping every transition test-driven and deterministic.
    pub fn start(tag: &str, n: usize, mut serve_config: ServeConfig) -> Self {
        let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
        let dataset = Arc::new(dataset);
        let split = Arc::new(CrossingCitySplit::build(&dataset, CityId(1)));
        let mut oracle = STTransRec::new(&dataset, &split, ModelConfig::test_small());
        oracle.train_epoch(&dataset);
        let ckpt = scratch_dir(tag).join("model.bin");
        st_tensor::save_params_atomic(oracle.params(), &ckpt).expect("save ckpt");

        serve_config.addr = "127.0.0.1:0".into();
        let mut fixture = Self {
            dataset,
            split,
            ckpt,
            oracle,
            replicas: Vec::with_capacity(n),
            // Placeholder; replaced below once the replica addrs exist.
            fleet: Arc::new(Fleet::new(&[], fleet_config())),
            router: None,
            serve_config,
        };
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let (server, injector) = fixture.boot_replica(i as u64);
            addrs.push(server.local_addr());
            fixture.replicas.push(ReplicaSlot {
                server: Some(server),
                injector,
            });
        }
        fixture.fleet = Arc::new(Fleet::new(&addrs, fleet_config()));
        let router = Router::new(
            fixture.fleet.clone(),
            RouterConfig {
                workers: 12,
                probe_interval: None, // tests drive probes explicitly
                // Mid-test stalls (training an oracle epoch, killing a
                // replica) can outlast the production 5s idle timeout on
                // a loaded machine; a long one keeps the tests' client
                // connections alive across them.
                idle_timeout: Duration::from_secs(60),
                ..RouterConfig::default()
            },
        );
        fixture.router = Some(RouterServer::start(router).expect("start router"));
        fixture
    }

    /// Boots one replica process-equivalent with its own fault injector.
    fn boot_replica(&self, seed: u64) -> (Server, Arc<FaultInjector>) {
        let injector = Arc::new(FaultInjector::new(seed));
        let config = ServeConfig {
            fault: Some(injector.clone()),
            ..self.serve_config.clone()
        };
        let reloader = Reloader::new(
            self.dataset.clone(),
            self.split.clone(),
            ModelConfig::test_small(),
            &self.ckpt,
        );
        let model = reloader.load().expect("load ckpt");
        let engine = Engine::new(self.dataset.clone(), model, Some(reloader), &config);
        let server = Server::start(engine, &config).expect("start replica");
        (server, injector)
    }

    /// The router's address.
    pub fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").local_addr()
    }

    /// A replica's current address.
    pub fn replica_addr(&self, id: usize) -> SocketAddr {
        self.fleet.replica(ReplicaId(id as u16)).addr()
    }

    /// Kills replica `id` (drops its server; the port closes).
    pub fn kill_replica(&mut self, id: usize) {
        if let Some(server) = self.replicas[id].server.take() {
            server.shutdown();
        }
    }

    /// Rejoins replica `id` on a fresh ephemeral port: boots a new
    /// server over the current checkpoint, repoints the fleet at it, and
    /// probes it back to health.
    pub fn rejoin_replica(&mut self, id: usize) {
        let (server, injector) = self.boot_replica(1000 + id as u64);
        let addr = server.local_addr();
        self.replicas[id] = ReplicaSlot {
            server: Some(server),
            injector,
        };
        self.fleet.update_addr(ReplicaId(id as u16), addr);
        assert!(self.fleet.probe(ReplicaId(id as u16)), "rejoin probe");
    }

    /// Runs `DOWN_AFTER` probe sweeps so a dead replica is marked down.
    pub fn probe_down(&self) {
        for _ in 0..DOWN_AFTER {
            self.fleet.probe_all();
        }
    }

    /// First dataset user whose static ring owner is replica `id`.
    pub fn user_owned_by(&self, id: usize) -> u32 {
        self.users_owned_by(id, 1)[0]
    }

    /// The first `count` dataset users statically owned by replica `id`.
    pub fn users_owned_by(&self, id: usize, count: usize) -> Vec<u32> {
        let total = self.dataset.num_users() as u32;
        let users: Vec<u32> = (0..total)
            .filter(|u| self.fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(id as u16)))
            .take(count)
            .collect();
        assert_eq!(
            users.len(),
            count,
            "replica {id} owns fewer than {count} of {total} users"
        );
        users
    }

    /// Blocks until replica `id`'s batcher queue holds exactly `depth`
    /// jobs (used with a frozen injector gate).
    pub fn wait_for_depth(&self, id: usize, depth: usize) {
        let server = self.replicas[id].server.as_ref().expect("replica alive");
        let metrics = server.engine().metrics();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while metrics.queue_depth.load(Ordering::Relaxed) != depth as u64 {
            assert!(
                std::time::Instant::now() < deadline,
                "replica {id} queue never reached {depth}"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Shuts everything down (replicas then router).
    pub fn shutdown(mut self) {
        for slot in &mut self.replicas {
            if let Some(server) = slot.server.take() {
                server.shutdown();
            }
        }
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
    }
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        vnodes: 128,
        partition: PartitionMode::ByUser,
        breaker: BreakerConfig {
            failure_threshold: BREAKER_THRESHOLD,
            // Never auto-half-opens: tests use probes/force_half_open.
            cooldown: Duration::from_secs(3600),
        },
        down_after: DOWN_AFTER,
        probe_timeout: Duration::from_millis(500),
    }
}
