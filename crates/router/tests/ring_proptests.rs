//! Property-based tests for the consistent-hash ring: the three
//! guarantees the router tier leans on.
//!
//! 1. **Balance** — with enough virtual nodes, every replica's share of
//!    a large key population is within ±20% of uniform.
//! 2. **Minimal remap** — when one replica leaves, only the keys it
//!    owned move (each to its ring successor); everyone else's owner is
//!    bit-identical, and the moved fraction stays near 1/N.
//! 3. **Determinism** — ownership is a pure function of the member set:
//!    two independently built rings agree on every key, regardless of
//!    the order members were added.

use proptest::prelude::*;
use st_router::{HashRing, ReplicaId, RouteKey};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ±20% balance across fleet sizes 2..=6 under 4000 keys. 256
    /// vnodes keeps the consistent-hash share variance (~1/√vnodes)
    /// comfortably inside the band.
    #[test]
    fn key_distribution_is_within_20_percent_of_uniform(
        replicas in 2u16..7, key_offset in 0u32..10_000
    ) {
        let ring = HashRing::with_members(replicas, 256);
        let keys = 4_000u32;
        let mut counts = vec![0usize; ring.len()];
        for user in key_offset..key_offset + keys {
            let owner = ring.assign(RouteKey::User(user).hash()).unwrap();
            counts[owner.0 as usize] += 1;
        }
        let uniform = keys as f64 / replicas as f64;
        for (replica, &count) in counts.iter().enumerate() {
            let deviation = (count as f64 - uniform).abs() / uniform;
            prop_assert!(
                deviation <= 0.20,
                "replica {replica} owns {count} of {keys} keys \
                 ({:.1}% off uniform {uniform:.0})",
                deviation * 100.0
            );
        }
    }

    /// Removing one replica never moves a key it did not own, routes
    /// every orphaned key to its ring successor, and moves roughly 1/N
    /// of the population (≤ 1.3/N allows hash-share variance).
    #[test]
    fn removal_remaps_only_the_leavers_keys(
        replicas in 3u16..7, leaver_pick in 0u16..6
    ) {
        let leaver = ReplicaId(leaver_pick % replicas);
        let full = HashRing::with_members(replicas, 256);
        let mut reduced = full.clone();
        reduced.remove(leaver);

        let keys = 3_000u32;
        let mut moved = 0usize;
        for user in 0..keys {
            let hash = RouteKey::User(user).hash();
            let before = full.assign(hash).unwrap();
            let after = reduced.assign(hash).unwrap();
            if before == leaver {
                moved += 1;
                // The orphaned key lands exactly on its successor —
                // the same replica a health-filtered walk would pick.
                let successor = full
                    .successors(hash)
                    .into_iter()
                    .find(|r| *r != leaver)
                    .unwrap();
                prop_assert_eq!(after, successor);
            } else {
                prop_assert_eq!(before, after, "user {} moved needlessly", user);
            }
        }
        let bound = (keys as f64 / replicas as f64) * 1.3;
        prop_assert!(
            (moved as f64) <= bound,
            "{moved} of {keys} keys moved; bound {bound:.0}"
        );
        prop_assert!(moved > 0, "the leaver owned nothing");
    }

    /// Ownership is a pure function of the member set: independent
    /// construction and reversed add order agree everywhere, and
    /// successor walks agree too.
    #[test]
    fn same_member_set_same_assignment(replicas in 2u16..7, user in 0u32..100_000) {
        let a = HashRing::with_members(replicas, 128);
        let mut b = HashRing::new(128);
        for id in (0..replicas).rev() {
            b.add(ReplicaId(id));
        }
        let hash = RouteKey::User(user).hash();
        prop_assert_eq!(a.assign(hash), b.assign(hash));
        prop_assert_eq!(a.successors(hash), b.successors(hash));
    }

    /// City keys get the same three guarantees; spot-check determinism
    /// and totality on the city domain.
    #[test]
    fn city_keys_are_stable_too(replicas in 2u16..7, city in 0u16..5_000) {
        let a = HashRing::with_members(replicas, 128);
        let b = HashRing::with_members(replicas, 128);
        let hash = RouteKey::City(city).hash();
        let owner = a.assign(hash).unwrap();
        prop_assert_eq!(owner, b.assign(hash).unwrap());
        prop_assert!(a.members().contains(&owner));
    }
}
