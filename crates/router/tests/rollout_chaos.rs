//! Rolling-rollout chaos: kill a replica mid-rollout and prove the
//! three fleet invariants hold end to end, over real TCP:
//!
//! 1. The rollout **pauses** at the dead shard (it never skips ahead or
//!    abandons verification) and resumes exactly there after rejoin.
//! 2. **Epochs never mix for one user**: every user's observed
//!    `X-Model-Epoch` sequence is non-decreasing for the whole run, and
//!    a user pinned to the new generation is shed (`503` + Retry-After)
//!    rather than answered by an old-generation replica.
//! 3. **Conservation**: every submitted request is accounted for —
//!    `submitted = served + shed` — and the router's ledger agrees
//!    with the client-side tally.
//!
//! The first test drives the full fleet through a mid-rollout replica
//! death; the second isolates the pin rule when the *upgraded* owner
//! itself dies (the one case where serving at all would mix epochs).

mod common;

use common::FleetFixture;
use st_router::{ReplicaId, RolloutConfig, RolloutDriver, RolloutStep};
use st_serve::client::HttpClient;
use st_serve::server::ServeConfig;
use st_tensor::StorageEncoding;
use std::collections::HashMap;

/// Client-side tally across the whole run.
#[derive(Default)]
struct Tally {
    submitted: usize,
    served: usize,
}

/// One request per tracked user: everyone must be served (`200`), and
/// nobody's `X-Model-Epoch` may regress — the client-visible form of
/// "epochs never mix per user", which holds across remaps too.
fn sweep(
    client: &mut HttpClient,
    users: &[u32],
    last_epoch: &mut HashMap<u32, u64>,
    tally: &mut Tally,
) {
    for &user in users {
        tally.submitted += 1;
        let resp = client
            .get(&format!("/recommend?user={user}&city=1&k=4"))
            .expect("request resolves");
        assert_eq!(resp.status, 200, "user {user}: {}", resp.body);
        tally.served += 1;
        let epoch: u64 = resp
            .header("x-model-epoch")
            .expect("epoch header")
            .parse()
            .expect("numeric epoch");
        let floor = last_epoch.entry(user).or_insert(epoch);
        assert!(
            epoch >= *floor,
            "user {user} regressed from epoch {floor} to {epoch}"
        );
        *floor = epoch;
    }
}

#[test]
fn replica_death_mid_rollout_pauses_without_mixing_epochs() {
    let mut fx = FleetFixture::start("rollout-chaos", 3, ServeConfig::default());
    // Two users on the shard that upgrades first, one on each other.
    let mut users: Vec<u32> = fx.users_owned_by(0, 2);
    users.push(fx.user_owned_by(1));
    users.push(fx.user_owned_by(2));
    let mut client = HttpClient::connect(fx.router_addr()).expect("connect router");
    let mut last_epoch = HashMap::new();
    let mut tally = Tally::default();

    // Baseline traffic at epoch 1.
    sweep(&mut client, &users, &mut last_epoch, &mut tally);

    // Publish generation 2 and start the rollout.
    fx.oracle.train_epoch(&fx.dataset.clone());
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");
    let fleet = fx.fleet.clone();
    let mut driver = RolloutDriver::new(
        &fleet,
        RolloutConfig {
            expect_format: Some(StorageEncoding::F32),
            rpc_timeout: None,
        },
    );

    // Shard 0 upgrades and verifies; its users see epoch 2 and pin.
    let step = driver.step();
    assert_eq!(
        step,
        RolloutStep::Upgraded {
            replica: ReplicaId(0),
            epoch: 2
        },
        "first step"
    );
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    assert!(fx.fleet.pinned_count() >= 2, "shard-0 users are pinned");

    // Replica 1 dies before its turn. The rollout pauses — and keeps
    // pausing at the same shard — until it rejoins.
    fx.kill_replica(1);
    fx.probe_down();
    for _ in 0..2 {
        match driver.step() {
            RolloutStep::Paused { replica, reason } => {
                assert_eq!(replica, ReplicaId(1));
                assert_eq!(reason, "replica down");
            }
            other => panic!("expected pause at dead shard, got {other:?}"),
        }
    }
    assert!(fx.fleet.rollout_active(), "rollout holds position");

    // Mid-pause traffic: shard 1's user remaps to a live successor (old
    // or new generation — either is fine for an unpinned user) and
    // nobody's epoch regresses.
    sweep(&mut client, &users, &mut last_epoch, &mut tally);

    // The corpse rejoins on a fresh port; the driver resumes exactly
    // where it paused — shard 1, then shard 2 — and verification still
    // gates every step.
    fx.rejoin_replica(1);
    let step = driver.step();
    assert_eq!(
        step,
        RolloutStep::Upgraded {
            replica: ReplicaId(1),
            epoch: 2
        },
        "resumes at the paused shard"
    );
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    let step = driver.step();
    assert_eq!(
        step,
        RolloutStep::Upgraded {
            replica: ReplicaId(2),
            epoch: 2
        }
    );
    assert_eq!(driver.step(), RolloutStep::Done);
    assert!(!fx.fleet.rollout_active());
    assert_eq!(fx.fleet.pinned_count(), 0, "pins drop with the rollout");

    // Post-rollout traffic: everyone lands on epoch 2.
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    for (&user, &epoch) in &last_epoch {
        assert_eq!(epoch, 2, "user {user} never reached the new generation");
    }

    // Conservation: nothing was lost across death, pause, and resume —
    // and the router's ledger agrees with the client-side tally.
    assert_eq!(tally.submitted, tally.served);
    let metrics = client.get("/metrics").expect("metrics");
    let scrape = |name: &str| -> usize {
        metrics
            .body
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    assert_eq!(scrape("st_router_forwarded_total "), tally.served);
    assert_eq!(
        scrape("st_router_recommend_requests_total "),
        tally.submitted
    );
    assert_eq!(scrape("st_router_epoch_pin_503_total "), 0);
    assert!(
        scrape("st_router_remapped_total ") >= 1,
        "the dead shard's traffic was never diverted"
    );

    fx.shutdown();
}

#[test]
fn reposting_admin_reload_resumes_paused_rollout_over_http() {
    // The HTTP path builds a fresh RolloutDriver per POST; this drives
    // pause/resume purely through /admin/reload to prove a re-POST
    // continues the paused rollout (preserving upgraded shards and
    // pins) instead of restarting it.
    let mut fx = FleetFixture::start("rollout-resume", 3, ServeConfig::default());
    let users: Vec<u32> = (0..3).map(|shard| fx.user_owned_by(shard)).collect();
    let mut client = HttpClient::connect(fx.router_addr()).expect("connect router");
    let mut last_epoch = HashMap::new();
    let mut tally = Tally::default();
    sweep(&mut client, &users, &mut last_epoch, &mut tally);

    // Publish generation 2, kill shard 1, and start the rollout: shard 0
    // upgrades, then the rollout pauses at the corpse.
    fx.oracle.train_epoch(&fx.dataset.clone());
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");
    fx.kill_replica(1);
    fx.probe_down();
    let paused = client.post("/admin/reload").expect("rollout rpc");
    assert_eq!(paused.status, 503, "body: {}", paused.body);
    assert!(paused.body.contains("\"completed\":false"), "{}", paused.body);
    assert!(
        paused.body.contains("{\"replica\":0,\"model_epoch\":2}"),
        "shard 0 upgraded before the pause: {}",
        paused.body
    );

    // Shard 0's user is served by the new generation and pins to it.
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    assert_eq!(last_epoch[&users[0]], 2);
    assert!(fx.fleet.pinned_count() >= 1, "shard-0 user is pinned");

    // Re-POST while the shard is still down: the rollout must *resume*
    // at shard 1 — not restart. A restart would re-reload shard 0
    // (bumping it to epoch 3) and clear the pin set.
    let still = client.post("/admin/reload").expect("rollout rpc");
    assert_eq!(still.status, 503, "body: {}", still.body);
    assert!(
        still.body.contains("\"upgraded\":[]"),
        "resume must not re-upgrade shard 0: {}",
        still.body
    );
    assert!(fx.fleet.pinned_count() >= 1, "resume must not clear pins");
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    assert_eq!(
        last_epoch[&users[0]], 2,
        "shard 0 must not be reloaded twice"
    );

    // Rejoin and re-POST: the rollout finishes from where it paused,
    // upgrading exactly shards 1 and 2.
    fx.rejoin_replica(1);
    let done = client.post("/admin/reload").expect("rollout rpc");
    assert_eq!(done.status, 200, "body: {}", done.body);
    assert!(done.body.contains("\"completed\":true"), "{}", done.body);
    assert!(
        done.body.contains(
            "\"upgraded\":[{\"replica\":1,\"model_epoch\":2},{\"replica\":2,\"model_epoch\":2}]"
        ),
        "resume finishes the remaining shards only: {}",
        done.body
    );
    assert!(!fx.fleet.rollout_active());
    sweep(&mut client, &users, &mut last_epoch, &mut tally);
    for (&user, &epoch) in &last_epoch {
        assert_eq!(epoch, 2, "user {user} never reached the new generation");
    }
    assert_eq!(tally.submitted, tally.served, "nothing lost across resume");

    // The ledger distinguishes the fresh start from the two resumes.
    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("st_router_rollouts_started_total 1"));
    assert!(metrics.body.contains("st_router_rollouts_resumed_total 2"));
    assert!(metrics.body.contains("st_router_rollouts_completed_total 1"));

    fx.shutdown();
}

#[test]
fn pinned_users_shed_when_their_upgraded_owner_dies() {
    // The pin rule in isolation, on a 2-replica fleet: once a user is
    // served by the new generation, the only acceptable answers are
    // new-generation or 503 — never the old model.
    let mut fx = FleetFixture::start("pin-floor", 2, ServeConfig::default());
    let user = fx.user_owned_by(0);
    let mut client = HttpClient::connect(fx.router_addr()).expect("connect router");

    fx.oracle.train_epoch(&fx.dataset.clone());
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");
    let fleet = fx.fleet.clone();
    let mut driver = RolloutDriver::new(&fleet, RolloutConfig::default());
    assert!(matches!(driver.step(), RolloutStep::Upgraded { .. }));

    let path = format!("/recommend?user={user}&city=1&k=5");
    let resp = client.get(&path).expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-model-epoch"), Some("2"));
    assert_eq!(fx.fleet.pinned_count(), 1);

    // The upgraded owner dies; the ring successor is old-generation, so
    // the pinned user is shed until the rollout catches up.
    fx.kill_replica(0);
    fx.probe_down();
    let shed = client.get(&path).expect("request");
    assert_eq!(shed.status, 503, "body: {}", shed.body);
    assert!(shed.body.contains("generation"), "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("1"));

    // An unpinned user of the same dead shard simply remaps.
    let unpinned = fx
        .users_owned_by(0, 4)
        .into_iter()
        .find(|u| *u != user)
        .expect("another shard-0 user");
    let remapped = client
        .get(&format!("/recommend?user={unpinned}&city=1&k=5"))
        .expect("request");
    assert_eq!(remapped.status, 200, "body: {}", remapped.body);
    assert_eq!(remapped.header("x-router-replica"), Some("1"));

    // After rejoin the paused rollout finishes (upgrading shard 1), and
    // the pinned user is served again by a verified new-generation
    // replica.
    fx.rejoin_replica(0);
    let report = driver.run();
    assert!(report.completed, "paused: {:?}", report.paused);
    let back = client.get(&path).expect("request");
    assert_eq!(back.status, 200, "body: {}", back.body);

    fx.shutdown();
}
