//! End-to-end router tests: a real fleet of `st-serve` replicas on
//! ephemeral loopback ports behind a real `st-router`, exercised over
//! TCP.
//!
//! The central invariant is **transparency**: a response through the
//! router must be byte-identical to the same request answered directly
//! by the replica that served it — status, body, and headers modulo
//! hop-by-hop (`Connection`) and the router's own `X-Router-Replica`
//! stamp. That must hold for fresh (MISS), cached (HIT), degraded
//! (STALE), and error responses alike.

mod common;

use common::{FleetFixture, BREAKER_THRESHOLD};
use st_router::{BreakerState, ReplicaId};
use st_serve::client::{HttpClient, HttpResponse};
use st_serve::server::ServeConfig;
use st_serve::BatchConfig;
use std::time::Duration;

/// Headers that may legitimately differ between a direct response and
/// its relayed twin: the per-hop `Connection` and the router's stamp.
fn comparable_headers(resp: &HttpResponse) -> Vec<(String, String)> {
    let mut headers: Vec<(String, String)> = resp
        .headers
        .iter()
        .filter(|(k, _)| k != "connection" && k != "x-router-replica")
        .cloned()
        .collect();
    headers.sort();
    headers
}

/// Asserts `via_router` is the byte-faithful relay of `direct`.
fn assert_transparent(via_router: &HttpResponse, direct: &HttpResponse, context: &str) {
    assert_eq!(via_router.status, direct.status, "{context}: status");
    assert_eq!(via_router.body, direct.body, "{context}: body");
    assert_eq!(
        comparable_headers(via_router),
        comparable_headers(direct),
        "{context}: headers (modulo hop-by-hop)"
    );
    assert!(
        via_router.header("x-router-replica").is_some(),
        "{context}: relay must stamp the shard"
    );
}

#[test]
fn responses_through_router_are_byte_identical_to_direct() {
    let fx = FleetFixture::start("transparent", 2, ServeConfig::default());
    let mut router = HttpClient::connect(fx.router_addr()).expect("connect router");

    for shard in 0..2 {
        let user = fx.user_owned_by(shard);
        let path = format!("/recommend?user={user}&city=1&k=5");

        // First pass through the router misses and fills the cache.
        let miss = router.get(&path).expect("router miss");
        assert_eq!(miss.status, 200, "body: {}", miss.body);
        assert_eq!(miss.header("x-cache"), Some("MISS"));
        assert_eq!(
            miss.header("x-router-replica"),
            Some(shard.to_string().as_str()),
            "request must land on its static owner"
        );

        // Cached pass via the router vs the same cached answer direct
        // from the owning replica: full transparency, including the
        // X-Cache and X-Model-Epoch headers.
        let hit = router.get(&path).expect("router hit");
        assert_eq!(hit.header("x-cache"), Some("HIT"));
        assert_eq!(hit.body, miss.body);
        let mut direct = HttpClient::connect(fx.replica_addr(shard)).expect("connect replica");
        let direct_hit = direct.get(&path).expect("direct hit");
        assert_eq!(direct_hit.header("x-cache"), Some("HIT"));
        assert_transparent(&hit, &direct_hit, &format!("HIT shard {shard}"));
    }

    // Backend errors relay transparently too: an unknown user is the
    // backend's 404, not the router's.
    let owner = fx
        .fleet
        .static_owner(st_router::RouteKey::User(999_999))
        .unwrap();
    let nf_path = "/recommend?user=999999&city=1&k=5";
    let via = router.get(nf_path).expect("router 404");
    let mut direct =
        HttpClient::connect(fx.replica_addr(owner.0 as usize)).expect("connect replica");
    let direct_404 = direct.get(nf_path).expect("direct 404");
    assert_eq!(via.status, 404);
    assert_transparent(&via, &direct_404, "relayed 404");

    // An unparsable routing key is answered by the router itself, with
    // the same wording the backend would use.
    let bad = router
        .get("/recommend?user=abc&city=1&k=5")
        .expect("router 400");
    let direct_400 = direct
        .get("/recommend?user=abc&city=1&k=5")
        .expect("direct 400");
    assert_eq!(bad.status, 400);
    assert_eq!(bad.body, direct_400.body);

    fx.shutdown();
}

#[test]
fn degraded_responses_relay_byte_identically() {
    // Small queue with a low degrade watermark and a real deadline, so
    // a frozen batcher pushes the replica into stale-cache serving.
    let config = ServeConfig {
        degrade_watermark: 2,
        batch: BatchConfig {
            queue_capacity: 6,
            deadline: Duration::from_millis(300),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let fx = FleetFixture::start("degraded", 2, config);
    let victim = 0usize;
    let users = fx.users_owned_by(victim, 3);
    let (warm, park_a, park_b) = (users[0], users[1], users[2]);
    let mut router = HttpClient::connect(fx.router_addr()).expect("connect router");

    // Warm the stale cache through the router, then hot-reload the
    // victim directly: the epoch bump strands the fresh epoch-keyed
    // cache, so the warmed combo can only come back from the
    // epoch-agnostic stale cache once the replica is overloaded.
    let warm_path = format!("/recommend?user={warm}&city=1&k=5");
    assert_eq!(router.get(&warm_path).expect("warm").status, 200);
    let replica_addr = fx.replica_addr(victim);
    let mut admin = HttpClient::connect(replica_addr).expect("connect replica admin");
    assert_eq!(admin.post("/admin/reload").expect("reload").status, 200);

    // Freeze the victim's batcher and park two fresh requests so the
    // queue sits at the degrade watermark.
    fx.replicas[victim].injector.freeze();
    let handles: Vec<_> = [park_a, park_b]
        .into_iter()
        .map(|user| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(replica_addr).expect("connect");
                c.get(&format!("/recommend?user={user}&city=1&k=7"))
                    .expect("parked request resolves")
                    .status
            })
        })
        .collect();
    fx.wait_for_depth(victim, 2);

    // Above the watermark the warmed combo degrades to the stale cache —
    // via the router and direct. Capture both now, but keep every
    // assertion until after the thaw: an unwound test with a frozen
    // batcher would deadlock the server's drop.
    let stale_via = router.get(&warm_path).expect("router stale");
    let mut direct = HttpClient::connect(replica_addr).expect("connect replica");
    let stale_direct = direct.get(&warm_path).expect("direct stale");

    // Let the parked requests age past their deadline, then thaw.
    std::thread::sleep(Duration::from_millis(650));
    fx.replicas[victim].injector.thaw();
    let parked: Vec<u16> = handles
        .into_iter()
        .map(|h| h.join().expect("parked thread"))
        .collect();

    assert_eq!(stale_via.header("x-cache"), Some("STALE"));
    assert_eq!(stale_via.header("x-degraded"), Some("true"));
    assert!(stale_via.body.starts_with("{\"degraded\":true,"));
    assert_transparent(&stale_via, &stale_direct, "degraded STALE");
    for status in parked {
        assert_eq!(status, 503, "parked requests die of deadline expiry");
    }

    fx.shutdown();
}

#[test]
fn routing_is_stable_and_spread_across_shards() {
    let fx = FleetFixture::start("stability", 3, ServeConfig::default());
    let mut router = HttpClient::connect(fx.router_addr()).expect("connect router");

    let users: Vec<u32> = (0..fx.dataset.num_users() as u32).collect();
    let mut shard_counts = vec![0usize; 3];
    for &user in &users {
        let path = format!("/recommend?user={user}&city=1&k=3");
        let first = router.get(&path).expect("request");
        assert_eq!(first.status, 200, "body: {}", first.body);
        let shard = first
            .header("x-router-replica")
            .expect("stamped")
            .to_string();
        // Same user, same shard — on repeat and against the ring oracle.
        let again = router.get(&path).expect("request");
        assert_eq!(again.header("x-router-replica"), Some(shard.as_str()));
        let expected = fx
            .fleet
            .static_owner(st_router::RouteKey::User(user))
            .unwrap();
        assert_eq!(shard, expected.to_string());
        shard_counts[shard.parse::<usize>().unwrap()] += 1;
    }
    for (shard, &count) in shard_counts.iter().enumerate() {
        assert!(
            count > 0,
            "shard {shard} received no users: {shard_counts:?}"
        );
    }

    // Nothing was remapped and nothing shed.
    let metrics = router.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("st_router_remapped_total 0"));
    assert!(metrics.body.contains("st_router_dark_shard_503_total 0"));
    assert!(metrics.body.contains("st_router_forward_errors_total 0"));

    fx.shutdown();
}

#[test]
fn replica_death_trips_breaker_then_probes_remap_then_rejoin_restores() {
    let mut fx = FleetFixture::start("breaker", 2, ServeConfig::default());
    let victim = 1usize;
    let user = fx.user_owned_by(victim);
    let path = format!("/recommend?user={user}&city=1&k=5");
    let mut router = HttpClient::connect(fx.router_addr()).expect("connect router");

    // Sanity: the shard answers before the kill.
    assert_eq!(router.get(&path).expect("pre-kill").status, 200);

    fx.kill_replica(victim);

    // Fresh-connect failures count against the breaker until it opens;
    // every shed carries Retry-After and nothing fails over (the shard
    // is dark, not reassigned).
    for i in 0..BREAKER_THRESHOLD {
        let resp = router.get(&path).expect("dark window");
        assert_eq!(resp.status, 503, "request {i}: {}", resp.body);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("unreachable"), "{}", resp.body);
    }
    assert_eq!(
        fx.fleet.replica(ReplicaId(victim as u16)).breaker.state(),
        BreakerState::Open
    );
    let fast = router.get(&path).expect("breaker-open reject");
    assert_eq!(fast.status, 503);
    assert!(fast.body.contains("dark"), "{}", fast.body);

    // Health probes notice the corpse; the shard's keys remap to the
    // ring successor and serve again.
    fx.probe_down();
    assert!(!fx.fleet.replica(ReplicaId(victim as u16)).healthy());
    let remapped = router.get(&path).expect("remapped");
    assert_eq!(remapped.status, 200, "body: {}", remapped.body);
    assert_eq!(remapped.header("x-router-replica"), Some("0"));

    // Rejoin on a fresh port: probe marks it healthy, resets the
    // breaker, and the user's traffic returns to its home shard.
    fx.rejoin_replica(victim);
    assert_eq!(
        fx.fleet.replica(ReplicaId(victim as u16)).breaker.state(),
        BreakerState::Closed
    );
    let back = router.get(&path).expect("back home");
    assert_eq!(back.status, 200, "body: {}", back.body);
    assert_eq!(back.header("x-router-replica"), Some("1"));

    // The router's ledger saw all of it.
    let metrics = router.get("/metrics").expect("metrics");
    assert!(metrics.body.contains(&format!(
        "st_router_forward_errors_total {BREAKER_THRESHOLD}"
    )));
    assert!(metrics.body.contains("st_router_dark_shard_503_total 1"));
    assert!(metrics.body.contains("st_router_breaker_opened_total 1"));

    fx.shutdown();
}

#[test]
fn backend_deadline_sheds_relay_without_tripping_the_breaker() {
    // A frozen batcher ages queued jobs past their deadline: st-serve
    // answers 503 deadline-exceeded + Retry-After for each. Those are
    // the backend protecting itself — the router must relay them (like
    // its 429s) without counting them toward the shard's breaker, or a
    // transient overload would become a cooldown-long dark window.
    let config = ServeConfig {
        batch: BatchConfig {
            queue_capacity: 8,
            deadline: Duration::from_millis(100),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut fx = FleetFixture::start("shed-breaker", 2, config);
    let victim = 0usize;
    let users = fx.users_owned_by(victim, BREAKER_THRESHOLD as usize);
    let router_addr = fx.router_addr();

    fx.replicas[victim].injector.freeze();
    let handles: Vec<_> = users
        .iter()
        .map(|&user| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(router_addr).expect("connect router");
                c.get(&format!("/recommend?user={user}&city=1&k=6"))
                    .expect("shed request resolves")
            })
        })
        .collect();
    fx.wait_for_depth(victim, BREAKER_THRESHOLD as usize);

    // Let every parked job age out, then thaw: breaker-threshold-many
    // consecutive 503 sheds come back through the router.
    std::thread::sleep(Duration::from_millis(250));
    fx.replicas[victim].injector.thaw();
    for handle in handles {
        let resp = handle.join().expect("shed thread");
        assert_eq!(resp.status, 503, "body: {}", resp.body);
        assert!(resp.body.contains("deadline-exceeded"), "{}", resp.body);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.header("x-router-replica").is_some(), "relayed");
    }

    // The shard is alive and must stay routable: no breaker trip, no
    // dark-shard shedding, and the next request is served normally.
    assert_eq!(
        fx.fleet.replica(ReplicaId(victim as u16)).breaker.state(),
        BreakerState::Closed,
        "deliberate sheds must not darken the shard"
    );
    let mut router = HttpClient::connect(router_addr).expect("connect router");
    let ok = router
        .get(&format!("/recommend?user={}&city=1&k=6", users[0]))
        .expect("post-thaw request");
    assert_eq!(ok.status, 200, "body: {}", ok.body);
    let metrics = router.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("st_router_dark_shard_503_total 0"));

    fx.shutdown();
}

#[test]
fn admin_reload_rolls_the_whole_fleet_with_verification() {
    let mut fx = FleetFixture::start("rollout", 2, ServeConfig::default());
    // Publish a second generation (one more training epoch).
    fx.oracle.train_epoch(&fx.dataset.clone());
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");

    let mut router = HttpClient::connect(fx.router_addr()).expect("connect router");
    let resp = router
        .post("/admin/reload?format=f32")
        .expect("rollout rpc");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.body.contains("\"completed\":true"), "{}", resp.body);
    assert_eq!(
        resp.body.matches("\"model_epoch\":2").count(),
        2,
        "both replicas verified at epoch 2: {}",
        resp.body
    );

    // A pinned wrong format is refused and pauses the rollout.
    let wrong = router
        .post("/admin/reload?format=int8")
        .expect("rollout rpc");
    assert_eq!(wrong.status, 503, "body: {}", wrong.body);
    assert!(wrong.body.contains("format mismatch"), "{}", wrong.body);

    // Traffic after the (first) rollout serves the new epoch everywhere.
    for shard in 0..2 {
        let user = fx.user_owned_by(shard);
        let resp = router
            .get(&format!("/recommend?user={user}&city=1&k=5"))
            .expect("request");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        assert_eq!(resp.header("x-model-epoch"), Some("2"));
    }

    let metrics = router.get("/metrics").expect("metrics");
    assert!(metrics
        .body
        .contains("st_router_rollouts_completed_total 1"));
    assert!(metrics.body.contains("st_router_rollouts_paused_total 1"));

    fx.shutdown();
}
