//! Two-stage retrieval: geo-grid + IVF candidate generation in front of
//! the tape-free re-ranker.
//!
//! Scoring the full catalog per request is O(catalog) and does not
//! survive large cities. This module builds a [`RetrievalIndex`] once
//! per [`ModelSnapshot`] capture, with two complementary candidate
//! sources per city:
//!
//! - **Geo grid** — the paper's own city grid (Sec. 3.1.4): POIs bucketed
//!   into cells, queried by expanding Chebyshev rings around an anchor
//!   cell ([`st_geo::Grid::rings_within`]). The anchor is the user's
//!   historical center in the city when they have one, else the city's
//!   busiest cell by check-in volume.
//! - **IVF coarse index** — k-means centroids over the frozen
//!   city-independent POI embeddings with inverted lists. At query time
//!   the centroids themselves are scored *through the interaction tower*
//!   ([`ModelSnapshot::score_rows_with`]) as pseudo-POIs, so probe order
//!   ranks lists by the re-ranker's own notion of relevance; the top
//!   `nprobe`+ lists are spilled into the candidate set.
//!
//! The union (deduped, capped at `max_candidates`) feeds the existing
//! exact re-ranker. Tiny catalogs and unindexed cities fall back to the
//! exact sharded scan — the exact path stays the correctness oracle, and
//! when the candidate budget covers the whole catalog the retrieved
//! ranking is bit-identical to it.

use crate::recommend::{recommend_top_k, Recommendation};
use crate::snapshot::ModelSnapshot;
use st_data::{CityId, Dataset, PoiId, UserId};
use st_eval::Scorer;
use st_geo::{Grid, GridCell};
use st_tensor::{ops, InferCtx, Matrix, RowSource};
use std::collections::{HashMap, HashSet};

/// Knobs trading recall for latency. Defaults are the shipped serving
/// configuration; the recall differential suite and the catalog-scaling
/// bench both gate on them.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalConfig {
    /// Cap on the union candidate set per query. `0` disables retrieval
    /// entirely (every query falls back to the exact scan).
    pub max_candidates: usize,
    /// Minimum number of IVF lists probed per query. More lists are
    /// probed while the candidate budget has room.
    pub nprobe: usize,
    /// Chebyshev ring radius for grid expansion around the anchor cell
    /// (`0` = anchor cell only).
    pub grid_rings: usize,
    /// Catalogs smaller than this are not indexed: the exact scan is
    /// already cheap and a coarse index would only lose recall.
    pub min_catalog: usize,
    /// Lloyd iterations for the k-means build.
    pub kmeans_iters: usize,
    /// Upper bound on IVF centroids per city (the build also caps at
    /// `2·sqrt(catalog)` — finer lists than the classic `sqrt` rule,
    /// because the candidate budget probes whole lists and coarse lists
    /// are the dominant recall loss at large catalogs).
    pub max_centroids: usize,
    /// Grid sizing target: cells are chosen so one cell holds roughly
    /// this many POIs.
    pub target_cell_pois: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        Self {
            max_candidates: 4096,
            nprobe: 8,
            grid_rings: 2,
            min_catalog: 2048,
            kmeans_iters: 5,
            max_centroids: 1024,
            target_cell_pois: 64,
        }
    }
}

/// One city's candidate-generation state.
#[derive(Debug, Clone)]
struct CityIndex {
    /// Spatial grid over the city's bounding box.
    grid: Grid,
    /// POIs per flat-indexed grid cell.
    cell_pois: Vec<Vec<PoiId>>,
    /// Default ring-expansion anchor: the busiest cell by check-ins.
    default_anchor: GridCell,
    /// IVF centroids in POI-embedding space, one row each.
    centroids: Matrix,
    /// Inverted lists: POIs assigned to each centroid.
    lists: Vec<Vec<PoiId>>,
}

/// The candidate set produced for one query, with provenance counts for
/// observability.
#[derive(Debug, Clone)]
pub struct Candidates {
    /// Deduped union of grid and IVF candidates, capped at the budget.
    pub pois: Vec<PoiId>,
    /// How many came from the grid stage.
    pub from_grid: usize,
    /// How many came from the IVF stage (after dedup against the grid).
    pub from_ivf: usize,
}

/// How a retrieved ranking was produced — surfaced into serving metrics
/// so degraded-to-exact traffic is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalOutcome {
    /// Candidates were generated and re-ranked.
    Retrieved {
        /// Size of the candidate set that was re-ranked.
        candidates: usize,
        /// Grid-stage contribution.
        from_grid: usize,
        /// IVF-stage contribution.
        from_ivf: usize,
    },
    /// The exact full-catalog scan ran (no index for the city, retrieval
    /// disabled, or an unindexable query).
    Fallback,
}

/// Per-snapshot candidate-generation index over every indexable city.
///
/// Build once at [`ModelSnapshot`] capture time; queries are read-only
/// and thread-safe. Cities below `min_catalog` are deliberately absent —
/// [`RetrievalIndex::candidates`] returns `None` for them and callers
/// fall back to the exact scan.
#[derive(Debug, Clone)]
pub struct RetrievalIndex {
    cities: HashMap<CityId, CityIndex>,
    cfg: RetrievalConfig,
}

impl RetrievalIndex {
    /// Builds grid + IVF state for every city whose catalog clears
    /// `cfg.min_catalog`, from the frozen POI embeddings of `frozen`.
    pub fn build(frozen: &ModelSnapshot, dataset: &Dataset, cfg: RetrievalConfig) -> Self {
        let mut cities = HashMap::new();
        if cfg.max_candidates == 0 {
            return Self { cities, cfg };
        }
        // One global pass for POI popularity (per-POI filter calls are
        // O(all checkins) each).
        let mut popularity = vec![0u32; dataset.num_pois()];
        for c in dataset.checkins() {
            popularity[c.poi.idx()] += 1;
        }
        for city in dataset.cities() {
            let catalog = dataset.pois_in_city(city.id);
            if catalog.len() < cfg.min_catalog.max(1) {
                continue;
            }
            cities.insert(
                city.id,
                Self::build_city(frozen, dataset, &cfg, city.id, catalog, &popularity),
            );
        }
        Self { cities, cfg }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &RetrievalConfig {
        &self.cfg
    }

    /// Number of cities that were indexed.
    pub fn num_indexed_cities(&self) -> usize {
        self.cities.len()
    }

    /// Whether `city` has an index (otherwise queries fall back).
    pub fn covers(&self, city: CityId) -> bool {
        self.cities.contains_key(&city)
    }

    fn build_city(
        frozen: &ModelSnapshot,
        dataset: &Dataset,
        cfg: &RetrievalConfig,
        city: CityId,
        catalog: &[PoiId],
        popularity: &[u32],
    ) -> CityIndex {
        // Grid: square, sized so a cell holds ~target_cell_pois POIs.
        let n = ((catalog.len() as f64 / cfg.target_cell_pois.max(1) as f64)
            .sqrt()
            .ceil() as usize)
            .max(1);
        let grid = Grid::new(dataset.city(city).bbox, n, n);
        let mut cell_pois = vec![Vec::new(); grid.num_cells()];
        let mut cell_checkins = vec![0u64; grid.num_cells()];
        for &poi in catalog {
            if let Some(cell) = grid.cell_of(&dataset.poi(poi).location) {
                let flat = grid.flat_index(cell);
                cell_pois[flat].push(poi);
                cell_checkins[flat] += u64::from(popularity[poi.idx()]);
            }
        }
        let busiest = (0..grid.num_cells())
            .max_by_key(|&i| (cell_checkins[i], cell_pois[i].len(), std::cmp::Reverse(i)))
            .unwrap_or(0);
        let default_anchor = grid.cell_from_flat(busiest);

        // IVF: k-means over the catalog's frozen embedding rows, probed
        // straight out of whatever representation the snapshot holds —
        // quantized rows dequantize during this gather and nowhere else.
        let table = frozen.poi_table();
        let dim = table.cols();
        let mut points = Matrix::zeros(catalog.len(), dim);
        for (r, &poi) in catalog.iter().enumerate() {
            table.copy_row_into(poi.idx(), points.row_mut(r));
        }
        let k = ((2.0 * (catalog.len() as f64).sqrt()) as usize)
            .clamp(1, cfg.max_centroids.max(1))
            .min(catalog.len());
        // Deterministic init: evenly spaced catalog rows.
        let mut centroids = Matrix::zeros(k, dim);
        for j in 0..k {
            let src = j * catalog.len() / k;
            centroids.row_mut(j).copy_from_slice(points.row(src));
        }
        let mut assign = Vec::new();
        for _ in 0..cfg.kmeans_iters {
            ops::nearest_centroids(&points, &centroids, &mut assign);
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for (r, &j) in assign.iter().enumerate() {
                let j = j as usize;
                counts[j] += 1;
                for (s, &v) in sums[j * dim..(j + 1) * dim].iter_mut().zip(points.row(r)) {
                    *s += f64::from(v);
                }
            }
            for j in 0..k {
                if counts[j] == 0 {
                    continue; // empty cluster keeps its old centroid
                }
                for (c, &s) in centroids
                    .row_mut(j)
                    .iter_mut()
                    .zip(&sums[j * dim..(j + 1) * dim])
                {
                    *c = (s / counts[j] as f64) as f32;
                }
            }
        }
        ops::nearest_centroids(&points, &centroids, &mut assign);
        let mut lists = vec![Vec::new(); k];
        for (r, &j) in assign.iter().enumerate() {
            lists[j as usize].push(catalog[r]);
        }
        CityIndex {
            grid,
            cell_pois,
            default_anchor,
            centroids,
            lists,
        }
    }

    /// The ring-expansion anchor for `user` in `city`: the cell of their
    /// historical center when they have in-city check-ins, else the
    /// city's busiest cell.
    fn anchor(&self, index: &CityIndex, dataset: &Dataset, user: UserId, city: CityId) -> GridCell {
        let visited = dataset.user_visited_in_city(user, city);
        if visited.is_empty() {
            return index.default_anchor;
        }
        let (mut lat, mut lon) = (0.0f64, 0.0f64);
        for &p in &visited {
            let loc = &dataset.poi(p).location;
            lat += loc.lat;
            lon += loc.lon;
        }
        let n = visited.len() as f64;
        let center = st_geo::GeoPoint::new(lat / n, lon / n);
        index.grid.cell_of(&center).unwrap_or(index.default_anchor)
    }

    /// Generates the candidate set for `(user, city)`, or `None` when
    /// the query must fall back to the exact scan (city not indexed,
    /// retrieval disabled, or `user` outside the snapshot's table).
    ///
    /// `ctx` is the caller's scratch state; centroid probing runs one
    /// small tower evaluation through it.
    pub fn candidates(
        &self,
        frozen: &ModelSnapshot,
        ctx: &mut InferCtx,
        dataset: &Dataset,
        user: UserId,
        city: CityId,
    ) -> Option<Candidates> {
        let index = self.cities.get(&city)?;
        if self.cfg.max_candidates == 0 || user.idx() >= frozen.num_users() {
            return None;
        }
        let budget = self.cfg.max_candidates;
        let mut seen: HashSet<PoiId> = HashSet::with_capacity(budget.min(1 << 16));
        let mut pois = Vec::with_capacity(budget.min(1 << 16));

        // Stage 1: grid rings around the anchor, capped so the IVF stage
        // always keeps most of the budget.
        let grid_cap = (budget / 4).max(256).min(budget);
        let anchor = self.anchor(index, dataset, user, city);
        'rings: for cell in index.grid.rings_within(anchor, self.cfg.grid_rings) {
            for &poi in &index.cell_pois[index.grid.flat_index(cell)] {
                if pois.len() >= grid_cap {
                    break 'rings;
                }
                if seen.insert(poi) {
                    pois.push(poi);
                }
            }
        }
        let from_grid = pois.len();

        // Stage 2: IVF lists in descending tower-score order of their
        // centroids. Probe at least nprobe lists, then keep going while
        // the budget has room.
        let scores = frozen.score_rows_with(ctx, user.idx(), &index.centroids);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        for (probed, &list) in order.iter().enumerate() {
            if probed >= self.cfg.nprobe && pois.len() >= budget {
                break;
            }
            for &poi in &index.lists[list] {
                if pois.len() >= budget {
                    break;
                }
                if seen.insert(poi) {
                    pois.push(poi);
                }
            }
        }
        let from_ivf = pois.len() - from_grid;
        Some(Candidates {
            pois,
            from_grid,
            from_ivf,
        })
    }
}

/// Two-stage variant of [`recommend_top_k`]: generate candidates through
/// `index`, re-rank them through the snapshot's tape-free path, fall
/// back to the exact sharded scan when no candidates can be generated.
///
/// When the candidate budget covers the whole catalog the result is
/// bit-identical to [`recommend_top_k`] — the comparator
/// `(score desc, poi asc)` is a total order independent of candidate
/// order, and both paths score through the same op layer.
pub fn recommend_top_k_retrieved(
    frozen: &ModelSnapshot,
    index: &RetrievalIndex,
    dataset: &Dataset,
    user: UserId,
    city: CityId,
    k: usize,
    exclude: &[PoiId],
) -> (Vec<Recommendation>, RetrievalOutcome) {
    let mut ctx = InferCtx::new();
    let Some(c) = index.candidates(frozen, &mut ctx, dataset, user, city) else {
        return (
            recommend_top_k(frozen, dataset, user, city, k, exclude),
            RetrievalOutcome::Fallback,
        );
    };
    let outcome = RetrievalOutcome::Retrieved {
        candidates: c.pois.len(),
        from_grid: c.from_grid,
        from_ivf: c.from_ivf,
    };
    if k == 0 {
        return (Vec::new(), outcome);
    }
    let excluded: HashSet<PoiId> = exclude.iter().copied().collect();
    let cands: Vec<PoiId> = c
        .pois
        .iter()
        .copied()
        .filter(|p| !excluded.contains(p))
        .collect();
    let scores = frozen.score_batch(user, &cands);
    let mut ranked: Vec<Recommendation> = cands
        .into_iter()
        .zip(scores)
        .map(|(poi, score)| Recommendation { poi, score })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
    ranked.truncate(k);
    (ranked, outcome)
}

/// Mean recall@k of the retrieval path against the exact full scan over
/// `users`: the fraction of each user's exact top-k that the retrieved
/// top-k reproduces. Users whose queries fall back score 1.0 (fallback
/// *is* the exact scan).
pub fn retrieval_recall_at_k(
    frozen: &ModelSnapshot,
    index: &RetrievalIndex,
    dataset: &Dataset,
    users: &[UserId],
    city: CityId,
    k: usize,
) -> f64 {
    if users.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for &user in users {
        let (retrieved, outcome) =
            recommend_top_k_retrieved(frozen, index, dataset, user, city, k, &[]);
        if outcome == RetrievalOutcome::Fallback {
            total += 1.0;
            continue;
        }
        let exact = recommend_top_k(frozen, dataset, user, city, k, &[]);
        let got: Vec<PoiId> = retrieved.iter().map(|r| r.poi).collect();
        let want: Vec<PoiId> = exact.iter().map(|r| r.poi).collect();
        total += st_eval::overlap_at_k(&got, &want, k);
    }
    total / users.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, STTransRec};
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;

    fn setup_scaled(pois: usize) -> (Dataset, CrossingCitySplit) {
        let mut cfg = SynthConfig::tiny();
        cfg.pois = pois;
        cfg.users = 80;
        cfg.checkins = pois * 4;
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    fn trained(d: &Dataset, split: &CrossingCitySplit) -> ModelSnapshot {
        let mut m = STTransRec::new(d, split, ModelConfig::test_small());
        m.train_epoch(d);
        m.snapshot()
    }

    #[test]
    fn small_catalogs_are_not_indexed_and_fall_back() {
        let (d, split) = setup_scaled(80);
        let snap = trained(&d, &split);
        let index = RetrievalIndex::build(&snap, &d, RetrievalConfig::default());
        assert_eq!(index.num_indexed_cities(), 0);
        let user = split.test_users[0];
        let (recs, outcome) =
            recommend_top_k_retrieved(&snap, &index, &d, user, split.target_city, 5, &[]);
        assert_eq!(outcome, RetrievalOutcome::Fallback);
        assert_eq!(
            recs,
            recommend_top_k(&snap, &d, user, split.target_city, 5, &[])
        );
    }

    #[test]
    fn budget_covering_the_catalog_is_bit_identical_to_exact() {
        let (d, split) = setup_scaled(400);
        let snap = trained(&d, &split);
        let cfg = RetrievalConfig {
            min_catalog: 1,
            max_candidates: d.num_pois(), // budget >= catalog: full coverage
            nprobe: usize::MAX,
            ..RetrievalConfig::default()
        };
        let index = RetrievalIndex::build(&snap, &d, cfg);
        assert!(index.covers(split.target_city));
        let city = split.target_city;
        let k = d.pois_in_city(city).len();
        for &user in split.test_users.iter().take(4) {
            let (retrieved, outcome) =
                recommend_top_k_retrieved(&snap, &index, &d, user, city, k, &[]);
            match outcome {
                RetrievalOutcome::Retrieved { candidates, .. } => {
                    assert_eq!(candidates, d.pois_in_city(city).len());
                }
                RetrievalOutcome::Fallback => panic!("expected retrieval, got fallback"),
            }
            assert_eq!(
                retrieved,
                recommend_top_k(&snap, &d, user, city, k, &[]),
                "full-coverage retrieval diverged from exact for {user:?}"
            );
        }
    }

    #[test]
    fn candidate_set_respects_budget_and_dedup() {
        let (d, split) = setup_scaled(600);
        let snap = trained(&d, &split);
        let cfg = RetrievalConfig {
            min_catalog: 1,
            max_candidates: 128,
            ..RetrievalConfig::default()
        };
        let index = RetrievalIndex::build(&snap, &d, cfg);
        let mut ctx = InferCtx::new();
        let c = index
            .candidates(&snap, &mut ctx, &d, split.test_users[0], split.target_city)
            .expect("city is indexed");
        assert!(c.pois.len() <= 128, "budget exceeded: {}", c.pois.len());
        assert_eq!(c.from_grid + c.from_ivf, c.pois.len());
        let unique: HashSet<_> = c.pois.iter().collect();
        assert_eq!(unique.len(), c.pois.len(), "duplicate candidates");
        // Every candidate belongs to the queried city.
        assert!(c.pois.iter().all(|&p| d.poi(p).city == split.target_city));
    }

    #[test]
    fn disabled_retrieval_and_unknown_users_fall_back() {
        let (d, split) = setup_scaled(400);
        let snap = trained(&d, &split);
        let off = RetrievalIndex::build(
            &snap,
            &d,
            RetrievalConfig {
                max_candidates: 0,
                min_catalog: 1,
                ..RetrievalConfig::default()
            },
        );
        assert_eq!(off.num_indexed_cities(), 0);
        let on = RetrievalIndex::build(
            &snap,
            &d,
            RetrievalConfig {
                min_catalog: 1,
                ..RetrievalConfig::default()
            },
        );
        let mut ctx = InferCtx::new();
        let ghost = UserId(d.num_users() as u32);
        assert!(on
            .candidates(&snap, &mut ctx, &d, ghost, split.target_city)
            .is_none());
    }

    #[test]
    fn recall_harness_is_one_for_exhaustive_budgets() {
        let (d, split) = setup_scaled(400);
        let snap = trained(&d, &split);
        let cfg = RetrievalConfig {
            min_catalog: 1,
            max_candidates: d.num_pois(),
            nprobe: usize::MAX,
            ..RetrievalConfig::default()
        };
        let index = RetrievalIndex::build(&snap, &d, cfg);
        let users: Vec<UserId> = split.test_users.iter().copied().take(5).collect();
        let recall = retrieval_recall_at_k(&snap, &index, &d, &users, split.target_city, 10);
        assert_eq!(recall, 1.0);
    }
}
