//! Density-based spatial resampling (Sec. 3.1.4, Eq. 6-9).
//!
//! For one city: grid the bounding box, run Algorithm 1 to get uniformly
//! accessible regions, compute region densities, and expose a sampler
//! over POIs whose distribution is the paper's mixture of
//!
//! - the *raw* check-in distribution (each check-in equally likely), plus
//! - `alpha * sum_r n'_r` resampled draws via the two-stage procedure of
//!   Eq. 9: region `r ~ P(r|c)` (Eq. 8, inverse-density), then POI
//!   `v ~ P(v|r)` (Eq. 7, check-in proportional within the region).
//!
//! With `alpha = 0` the sampler degenerates to the raw distribution
//! (ST-TransRec-3); with `alpha = 1` all regions reach the density of the
//! densest region in expectation.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use st_data::{CityId, Dataset, PoiId};
use st_geo::{
    segment_regions, CellUserIndex, Grid, RegionDensities, RegionId, SeedOrder, Segmentation,
};

/// A per-city density-balanced POI sampler.
#[derive(Debug)]
pub struct CityResampler {
    city: CityId,
    grid: Grid,
    segmentation: Segmentation,
    densities: RegionDensities,
    /// Raw check-in draw: each check-in equally likely -> POI weight is
    /// its popularity.
    raw_pois: Vec<PoiId>,
    raw_dist: Option<WeightedIndex<f64>>,
    raw_count: usize,
    /// Two-stage resampling structures.
    region_dist: Option<WeightedIndex<f64>>,
    region_pois: Vec<Vec<PoiId>>,
    region_poi_dists: Vec<Option<WeightedIndex<f64>>>,
    /// `alpha * total_quota`, the expected number of resampled draws.
    resample_mass: f64,
    alpha: f64,
}

impl CityResampler {
    /// Builds the resampler for `city` from the training check-ins in
    /// `train` (test data must not leak into segmentation or densities).
    ///
    /// `grid_n` is the paper's `n` (an `n x n` grid), `delta` the
    /// Algorithm 1 merge threshold and `alpha` the punishment rate.
    pub fn build(
        dataset: &Dataset,
        train: &[st_data::Checkin],
        city: CityId,
        grid_n: usize,
        delta: f64,
        alpha: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let grid = Grid::new(dataset.city(city).bbox, grid_n, grid_n);

        // Per-cell visitor index + per-POI check-in counts, training only.
        let mut index = CellUserIndex::new(grid.num_cells());
        let mut poi_checkins: Vec<usize> = vec![0; dataset.num_pois()];
        let mut cell_checkins = vec![0usize; grid.num_cells()];
        for c in train {
            let poi = dataset.poi(c.poi);
            if poi.city != city {
                continue;
            }
            if let Some(cell) = grid.cell_of(&poi.location) {
                let flat = grid.flat_index(cell);
                index.record(flat, c.user.0);
                cell_checkins[flat] += 1;
                poi_checkins[c.poi.idx()] += 1;
            }
        }

        let segmentation = segment_regions(&grid, &index, delta, SeedOrder::DenseFirst, rng);
        let densities = RegionDensities::from_segmentation(&segmentation, &cell_checkins);

        // Raw distribution: POIs of this city weighted by check-ins.
        let mut raw_pois = Vec::new();
        let mut raw_weights = Vec::new();
        let mut raw_count = 0usize;
        for &poi in dataset.pois_in_city(city) {
            let n = poi_checkins[poi.idx()];
            if n > 0 {
                raw_pois.push(poi);
                raw_weights.push(n as f64);
                raw_count += n;
            }
        }
        let raw_dist = WeightedIndex::new(&raw_weights).ok();

        // Two-stage distributions (Eq. 7-8).
        let region_weights = densities.region_distribution();
        let region_dist = WeightedIndex::new(&region_weights).ok();
        let mut region_pois: Vec<Vec<PoiId>> = vec![Vec::new(); segmentation.num_regions()];
        let mut region_poi_weights: Vec<Vec<f64>> = vec![Vec::new(); segmentation.num_regions()];
        for &poi in dataset.pois_in_city(city) {
            let n = poi_checkins[poi.idx()];
            if n == 0 {
                continue;
            }
            let loc = &dataset.poi(poi).location;
            let Some(cell) = grid.cell_of(loc) else {
                continue;
            };
            let Some(region) = segmentation.region_of_cell(grid.flat_index(cell)) else {
                continue;
            };
            region_pois[region.0].push(poi);
            region_poi_weights[region.0].push(n as f64);
        }
        let region_poi_dists = region_poi_weights
            .iter()
            .map(|w| WeightedIndex::new(w).ok())
            .collect();

        let resample_mass = alpha * densities.total_quota() as f64;

        Self {
            city,
            grid,
            segmentation,
            densities,
            raw_pois,
            raw_dist,
            raw_count,
            region_dist,
            region_pois,
            region_poi_dists,
            resample_mass,
            alpha,
        }
    }

    /// The city this sampler covers.
    pub fn city(&self) -> CityId {
        self.city
    }

    /// The segmentation Algorithm 1 produced.
    pub fn segmentation(&self) -> &Segmentation {
        &self.segmentation
    }

    /// Region densities.
    pub fn densities(&self) -> &RegionDensities {
        &self.densities
    }

    /// The grid used for segmentation.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The punishment rate this sampler was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of raw training check-ins covered.
    pub fn raw_checkins(&self) -> usize {
        self.raw_count
    }

    /// Expected resampled draws (`alpha * sum_r n'_r`).
    pub fn resample_mass(&self) -> f64 {
        self.resample_mass
    }

    /// True if the city had any usable training check-ins.
    pub fn is_usable(&self) -> bool {
        self.raw_dist.is_some()
    }

    /// Draws one POI from the balanced mixture distribution.
    ///
    /// # Panics
    /// Panics if the city has no training check-ins (check
    /// [`CityResampler::is_usable`]).
    pub fn sample_poi(&self, rng: &mut impl Rng) -> PoiId {
        let raw = self.raw_dist.as_ref().expect("city has no check-ins");
        let total = self.raw_count as f64 + self.resample_mass;
        let use_resampled =
            self.resample_mass > 0.0 && rng.gen::<f64>() * total >= self.raw_count as f64;
        if use_resampled {
            if let Some(poi) = self.sample_two_stage(rng) {
                return poi;
            }
        }
        self.raw_pois[raw.sample(rng)]
    }

    /// The two-stage draw of Eq. 9. `None` when the drawn region holds no
    /// POIs (cannot happen for regions with check-ins; defensive).
    fn sample_two_stage(&self, rng: &mut impl Rng) -> Option<PoiId> {
        let region = RegionId(self.region_dist.as_ref()?.sample(rng));
        let dist = self.region_poi_dists[region.0].as_ref()?;
        Some(self.region_pois[region.0][dist.sample(rng)])
    }

    /// Draws a batch of POIs.
    pub fn sample_batch(&self, n: usize, rng: &mut impl Rng) -> Vec<PoiId> {
        (0..n).map(|_| self.sample_poi(rng)).collect()
    }

    /// The region a POI's location falls into, if any.
    pub fn region_of_poi(&self, dataset: &Dataset, poi: PoiId) -> Option<RegionId> {
        let loc = &dataset.poi(poi).location;
        let cell = self.grid.cell_of(loc)?;
        self.segmentation.region_of_cell(self.grid.flat_index(cell))
    }
}

/// Samples POIs across several cities (the paper's "source city" side is
/// all non-target cities together), drawing a city proportional to its
/// balanced mass, then a POI from that city's resampler.
#[derive(Debug)]
pub struct MultiCityResampler {
    cities: Vec<CityResampler>,
    city_dist: WeightedIndex<f64>,
}

impl MultiCityResampler {
    /// Combines per-city resamplers. Unusable (empty) cities are dropped.
    ///
    /// # Panics
    /// Panics if every city is empty.
    pub fn new(cities: Vec<CityResampler>) -> Self {
        let cities: Vec<CityResampler> = cities.into_iter().filter(|c| c.is_usable()).collect();
        assert!(!cities.is_empty(), "no usable cities for resampling");
        let weights: Vec<f64> = cities
            .iter()
            .map(|c| c.raw_checkins() as f64 + c.resample_mass())
            .collect();
        let city_dist = WeightedIndex::new(&weights).expect("positive city masses");
        Self { cities, city_dist }
    }

    /// Per-city samplers retained.
    pub fn cities(&self) -> &[CityResampler] {
        &self.cities
    }

    /// Draws one POI.
    pub fn sample_poi(&self, rng: &mut impl Rng) -> PoiId {
        let ci = self.city_dist.sample(rng);
        self.cities[ci].sample_poi(rng)
    }

    /// Draws a batch of POIs.
    pub fn sample_batch(&self, n: usize, rng: &mut impl Rng) -> Vec<PoiId> {
        (0..n).map(|_| self.sample_poi(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;

    fn setup() -> (st_data::Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    fn build(alpha: f64) -> (st_data::Dataset, CityResampler) {
        let (d, split) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let r = CityResampler::build(&d, &split.train, CityId(0), 8, 0.1, alpha, &mut rng);
        (d, r)
    }

    #[test]
    fn builds_regions_and_densities() {
        let (_, r) = build(0.1);
        assert!(r.is_usable());
        assert!(r.segmentation().num_regions() >= 1);
        assert!(r.raw_checkins() > 100);
        assert_eq!(r.alpha(), 0.1);
    }

    #[test]
    fn alpha_zero_is_pure_raw_distribution() {
        let (_, r) = build(0.0);
        assert_eq!(r.resample_mass(), 0.0);
        // Sampling still works and only returns city POIs with check-ins.
        let mut rng = SmallRng::seed_from_u64(1);
        let batch = r.sample_batch(200, &mut rng);
        assert_eq!(batch.len(), 200);
    }

    #[test]
    fn samples_only_city_pois() {
        let (d, r) = build(0.2);
        let mut rng = SmallRng::seed_from_u64(2);
        for poi in r.sample_batch(300, &mut rng) {
            assert_eq!(d.poi(poi).city, CityId(0));
        }
    }

    #[test]
    fn resampling_lifts_sparse_region_share() {
        // The core claim of Sec. 3.1.4: with alpha > 0, POIs outside the
        // densest region appear more often in MMD batches.
        let (d, r0) = build(0.0);
        let (_, r1) = build(1.0);
        let dense_share = |r: &CityResampler, d: &st_data::Dataset| {
            let Some(rstar) = r.densities().densest() else {
                return 1.0;
            };
            let mut rng = SmallRng::seed_from_u64(3);
            let n = 3000;
            let hits = r
                .sample_batch(n, &mut rng)
                .into_iter()
                .filter(|&p| r.region_of_poi(d, p) == Some(rstar))
                .count();
            hits as f64 / n as f64
        };
        let s0 = dense_share(&r0, &d);
        let s1 = dense_share(&r1, &d);
        // If the city segments into a single region there is nothing to
        // rebalance; the tiny config is built to avoid that.
        assert!(
            r0.segmentation().num_regions() > 1,
            "tiny config segmented into one region; test is vacuous"
        );
        assert!(
            s1 < s0,
            "alpha=1 should reduce densest-region share: {s0} -> {s1}"
        );
    }

    #[test]
    fn mixture_mass_matches_eq_6() {
        let (_, r) = build(0.5);
        let quota = r.densities().total_quota();
        assert!((r.resample_mass() - 0.5 * quota as f64).abs() < 1e-9);
    }

    #[test]
    fn multi_city_resampler_draws_from_all_source_cities() {
        let (d, split) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        // tiny config: city 0 is the only source; add target too to test
        // the multi-city plumbing.
        let r0 = CityResampler::build(&d, &split.train, CityId(0), 8, 0.1, 0.1, &mut rng);
        let r1 = CityResampler::build(&d, &split.train, CityId(1), 8, 0.1, 0.1, &mut rng);
        let multi = MultiCityResampler::new(vec![r0, r1]);
        assert_eq!(multi.cities().len(), 2);
        let batch = multi.sample_batch(400, &mut rng);
        let c0 = batch
            .iter()
            .filter(|&&p| d.poi(p).city == CityId(0))
            .count();
        let c1 = batch.len() - c0;
        assert!(c0 > 50 && c1 > 50, "both cities sampled: {c0}/{c1}");
    }

    #[test]
    #[should_panic(expected = "no usable cities")]
    fn multi_city_rejects_all_empty() {
        MultiCityResampler::new(vec![]);
    }

    #[test]
    fn test_split_does_not_leak_into_densities() {
        // Build on the target city: held-out check-ins must not count.
        let (d, split) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        let target = split.target_city;
        let r_train = CityResampler::build(&d, &split.train, target, 8, 0.1, 0.1, &mut rng);
        let all: Vec<_> = d.checkins().to_vec();
        let r_all = CityResampler::build(&d, &all, target, 8, 0.1, 0.1, &mut rng);
        assert!(r_train.raw_checkins() < r_all.raw_checkins());
    }
}
