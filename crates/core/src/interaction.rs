//! User-POI interaction sampling for `L_I` (Eq. 13).
//!
//! Positives are observed training check-ins; for each positive, the
//! paper uniformly samples `K = 4` negatives from the unobserved
//! interactions. Negatives are drawn from the *same city* as the positive
//! POI — the crossing-city task scores cities separately, and letting a
//! source positive push down target POIs would leak the wrong signal.

use rand::Rng;
use st_data::{Checkin, CityId, Dataset, PoiId, UserId};

/// A mini-batch of labelled (user, POI) pairs, flattened for embedding
/// lookups: row `i` pairs `users[i]` with `pois[i]` under `labels[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionBatch {
    /// User table row per pair.
    pub users: Vec<usize>,
    /// POI table row per pair.
    pub pois: Vec<usize>,
    /// 1.0 for observed check-ins, 0.0 for sampled negatives.
    pub labels: Vec<f32>,
}

impl InteractionBatch {
    /// Number of labelled pairs.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Samples interaction batches from one side's training check-ins
/// (source cities or the target city).
#[derive(Debug)]
pub struct InteractionSampler {
    /// Positive pairs (deduplicated user-POI, keeping multiplicity would
    /// overweight repeat visitors — the paper models implicit feedback).
    positives: Vec<(UserId, PoiId)>,
    /// Sorted visited-POI list per user (for negative rejection).
    visited: Vec<Vec<PoiId>>,
    /// Negative candidate pool per city.
    city_pools: Vec<Vec<PoiId>>,
}

impl InteractionSampler {
    /// Builds a sampler over the check-ins of `train` whose POI lies in
    /// one of `cities`.
    pub fn new(dataset: &Dataset, train: &[Checkin], cities: &[CityId]) -> Self {
        let in_side = |c: CityId| cities.contains(&c);
        let mut positives: Vec<(UserId, PoiId)> = train
            .iter()
            .filter(|c| in_side(dataset.poi(c.poi).city))
            .map(|c| (c.user, c.poi))
            .collect();
        positives.sort_unstable();
        positives.dedup();

        let mut visited: Vec<Vec<PoiId>> = vec![Vec::new(); dataset.num_users()];
        for &(u, p) in &positives {
            visited[u.idx()].push(p);
        }
        for v in &mut visited {
            v.sort_unstable();
        }

        let city_pools = dataset
            .cities()
            .iter()
            .map(|c| {
                if in_side(c.id) {
                    dataset.pois_in_city(c.id).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();

        Self {
            positives,
            visited,
            city_pools,
        }
    }

    /// Number of distinct positive pairs.
    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// True when the side has no training data (e.g. no target locals).
    pub fn is_empty(&self) -> bool {
        self.positives.is_empty()
    }

    /// Whether `user` has an observed interaction with `poi` on this side.
    pub fn is_positive(&self, user: UserId, poi: PoiId) -> bool {
        self.visited[user.idx()].binary_search(&poi).is_ok()
    }

    /// Samples `batch` positives, each with `negatives` same-city
    /// negatives the user never visited.
    ///
    /// # Panics
    /// Panics if the sampler is empty.
    pub fn sample_batch(
        &self,
        dataset: &Dataset,
        batch: usize,
        negatives: usize,
        rng: &mut impl Rng,
    ) -> InteractionBatch {
        assert!(!self.is_empty(), "no positives to sample");
        let mut out = InteractionBatch {
            users: Vec::with_capacity(batch * (1 + negatives)),
            pois: Vec::with_capacity(batch * (1 + negatives)),
            labels: Vec::with_capacity(batch * (1 + negatives)),
        };
        for _ in 0..batch {
            let (user, poi) = self.positives[rng.gen_range(0..self.positives.len())];
            out.users.push(user.idx());
            out.pois.push(poi.idx());
            out.labels.push(1.0);
            let pool = &self.city_pools[dataset.poi(poi).city.idx()];
            for _ in 0..negatives {
                let neg = self.sample_negative(user, pool, rng);
                out.users.push(user.idx());
                out.pois.push(neg.idx());
                out.labels.push(0.0);
            }
        }
        out
    }

    /// Uniform unobserved negative; falls back to any pool POI when the
    /// user has visited nearly everything (bounded retries).
    fn sample_negative(&self, user: UserId, pool: &[PoiId], rng: &mut impl Rng) -> PoiId {
        debug_assert!(!pool.is_empty(), "negative pool empty");
        for _ in 0..32 {
            let cand = pool[rng.gen_range(0..pool.len())];
            if !self.is_positive(user, cand) {
                return cand;
            }
        }
        pool[rng.gen_range(0..pool.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;

    fn setup() -> (st_data::Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn splits_sides_correctly() {
        let (d, split) = setup();
        let src = InteractionSampler::new(&d, &split.train, &[CityId(0)]);
        let tgt = InteractionSampler::new(&d, &split.train, &[CityId(1)]);
        assert!(!src.is_empty());
        assert!(!tgt.is_empty());
        // Sides are disjoint by city.
        let mut rng = SmallRng::seed_from_u64(0);
        let b = src.sample_batch(&d, 32, 2, &mut rng);
        for &p in &b.pois {
            assert_eq!(d.poi(PoiId(p as u32)).city, CityId(0));
        }
    }

    #[test]
    fn batch_layout_and_labels() {
        let (d, split) = setup();
        let s = InteractionSampler::new(&d, &split.train, &[CityId(0)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let b = s.sample_batch(&d, 10, 4, &mut rng);
        assert_eq!(b.len(), 50);
        for chunk in b.labels.chunks(5) {
            assert_eq!(chunk[0], 1.0);
            assert!(chunk[1..].iter().all(|&l| l == 0.0));
        }
        // Positive rows really are observed interactions.
        for i in (0..b.len()).step_by(5) {
            assert!(s.is_positive(UserId(b.users[i] as u32), PoiId(b.pois[i] as u32)));
        }
    }

    #[test]
    fn negatives_are_unvisited_same_city() {
        let (d, split) = setup();
        let s = InteractionSampler::new(&d, &split.train, &[CityId(0), CityId(1)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let b = s.sample_batch(&d, 50, 4, &mut rng);
        for i in (0..b.len()).step_by(5) {
            let pos_city = d.poi(PoiId(b.pois[i] as u32)).city;
            for j in 1..5 {
                let (u, p) = (UserId(b.users[i + j] as u32), PoiId(b.pois[i + j] as u32));
                assert!(!s.is_positive(u, p), "negative was actually visited");
                assert_eq!(d.poi(p).city, pos_city, "negative from wrong city");
            }
        }
    }

    #[test]
    fn held_out_target_interactions_are_not_positives() {
        let (d, split) = setup();
        let tgt = InteractionSampler::new(&d, &split.train, &[split.target_city]);
        for (i, &u) in split.test_users.iter().enumerate() {
            for &p in split.ground_truth_for(i) {
                assert!(
                    !tgt.is_positive(u, p),
                    "test ground truth leaked into training positives"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no positives")]
    fn empty_side_panics_on_sampling() {
        let (d, _) = setup();
        let s = InteractionSampler::new(&d, &[], &[CityId(0)]);
        let mut rng = SmallRng::seed_from_u64(3);
        s.sample_batch(&d, 1, 1, &mut rng);
    }
}
