//! Synchronous data-parallel training (Table 2).
//!
//! The paper splits each training step across GPUs with data parallelism;
//! here workers are OS threads (std scoped), each computing the
//! joint gradients on its own mini-batches against the shared, read-only
//! parameter snapshot. Gradients are averaged and applied once — exactly
//! the synchronous multi-GPU semantics whose ~2x scaling Table 2 reports.

use crate::model::{EpochStats, STTransRec, StepLosses};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::Dataset;
use st_tensor::{Gradients, MatrixPool};
use std::time::{Duration, Instant};

/// Data-parallel trainer over `workers` threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelTrainer {
    workers: usize,
}

impl ParallelTrainer {
    /// Creates a trainer with the given worker count (1 = the sequential
    /// baseline column of Table 2).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Self { workers }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// One synchronous step: every worker computes a full joint-loss
    /// gradient on its own batches; gradients are averaged and applied.
    pub fn train_step(
        &self,
        model: &mut STTransRec,
        dataset: &Dataset,
        master_rng: &mut SmallRng,
    ) -> StepLosses {
        let mut pools: Vec<MatrixPool> = (0..self.workers).map(|_| MatrixPool::new()).collect();
        self.step_with_pools(model, dataset, master_rng, &mut pools)
    }

    /// One synchronous step where worker `i` draws tape buffers from
    /// `pools[i]`. [`ParallelTrainer::train_epoch`] keeps the pools alive
    /// across steps so each worker reaches an allocation-free steady state.
    fn step_with_pools(
        &self,
        model: &mut STTransRec,
        dataset: &Dataset,
        master_rng: &mut SmallRng,
        pools: &mut [MatrixPool],
    ) -> StepLosses {
        assert_eq!(pools.len(), self.workers, "one pool per worker");
        let seeds: Vec<u64> = (0..self.workers).map(|_| master_rng.gen()).collect();
        let (merged, losses) = {
            let shared: &STTransRec = model;
            if self.workers == 1 {
                let mut grads = Gradients::zeros_like(shared.params());
                let mut rng = SmallRng::seed_from_u64(seeds[0]);
                let losses =
                    shared.accumulate_step_with_pool(dataset, &mut grads, &mut rng, &mut pools[0]);
                (grads, vec![losses])
            } else {
                let results = std::thread::scope(|scope| {
                    let handles: Vec<_> = seeds
                        .iter()
                        .zip(pools.iter_mut())
                        .map(|(&seed, pool)| {
                            scope.spawn(move || {
                                let mut grads = Gradients::zeros_like(shared.params());
                                let mut rng = SmallRng::seed_from_u64(seed);
                                let losses = shared
                                    .accumulate_step_with_pool(dataset, &mut grads, &mut rng, pool);
                                (grads, losses)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect::<Vec<_>>()
                });
                let mut iter = results.into_iter();
                let (mut merged, first_losses) = iter.next().expect("at least one worker");
                let mut losses = vec![first_losses];
                for (g, l) in iter {
                    merged.merge(&g);
                    losses.push(l);
                }
                merged.scale(1.0 / self.workers as f32);
                (merged, losses)
            }
        };
        model.apply(&merged);
        average_losses(&losses)
    }

    /// One epoch. With `w` workers, each step consumes `w` batches, so the
    /// per-epoch step count shrinks by `w` — same data budget, less wall
    /// clock, which is what Table 2 measures.
    pub fn train_epoch(&self, model: &mut STTransRec, dataset: &Dataset) -> TimedEpoch {
        let steps = (model.steps_per_epoch() / self.workers).max(1);
        let mut master_rng = SmallRng::seed_from_u64(model.config().seed ^ 0x9E3779B97F4A7C15);
        let mut pools: Vec<MatrixPool> = (0..self.workers).map(|_| MatrixPool::new()).collect();
        let start = Instant::now();
        let mut sum = StepLosses::default();
        for _ in 0..steps {
            let l = self.step_with_pools(model, dataset, &mut master_rng, &mut pools);
            sum.interaction_source += l.interaction_source;
            sum.interaction_target += l.interaction_target;
            sum.context_source += l.context_source;
            sum.context_target += l.context_target;
            sum.mmd += l.mmd;
        }
        let wall = start.elapsed();
        let n = steps as f32;
        let stats = EpochStats {
            epoch: model.history().len(),
            losses: StepLosses {
                interaction_source: sum.interaction_source / n,
                interaction_target: sum.interaction_target / n,
                context_source: sum.context_source / n,
                context_target: sum.context_target / n,
                mmd: sum.mmd / n,
            },
            steps,
        };
        TimedEpoch { stats, wall }
    }
}

/// Epoch statistics plus wall-clock duration (Table 2's unit of report).
#[derive(Debug, Clone)]
pub struct TimedEpoch {
    /// Averaged losses.
    pub stats: EpochStats,
    /// Wall-clock time of the epoch.
    pub wall: Duration,
}

fn average_losses(losses: &[StepLosses]) -> StepLosses {
    let n = losses.len() as f32;
    let mut avg = StepLosses::default();
    for l in losses {
        avg.interaction_source += l.interaction_source / n;
        avg.interaction_target += l.interaction_target / n;
        avg.context_source += l.context_source / n;
        avg.context_target += l.context_target / n;
        avg.mmd += l.mmd / n;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, STTransRec};
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn parallel_step_trains_and_stays_finite() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let trainer = ParallelTrainer::new(2);
        let mut rng = SmallRng::seed_from_u64(0);
        let l = trainer.train_step(&mut m, &d, &mut rng);
        assert!(l.interaction_source.is_finite() && l.interaction_source > 0.0);
        assert!(!m.params().has_non_finite());
    }

    #[test]
    fn two_workers_halve_steps_per_epoch() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let e1 = ParallelTrainer::new(1).train_epoch(&mut m, &d);
        let e2 = ParallelTrainer::new(2).train_epoch(&mut m, &d);
        assert_eq!(e2.stats.steps, (e1.stats.steps / 2).max(1));
    }

    #[test]
    fn parallel_training_converges_like_sequential() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let trainer = ParallelTrainer::new(2);
        let first = trainer.train_epoch(&mut m, &d).stats.losses;
        for _ in 0..2 {
            trainer.train_epoch(&mut m, &d);
        }
        let last = trainer.train_epoch(&mut m, &d).stats.losses;
        let f = first.interaction_source + first.interaction_target;
        let l = last.interaction_source + last.interaction_target;
        assert!(l < f, "parallel training did not reduce loss: {f} -> {l}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        ParallelTrainer::new(0);
    }
}
