//! Synchronous data-parallel training (Table 2).
//!
//! The paper splits each training step across GPUs with data parallelism;
//! here workers are OS threads (std scoped), each computing the
//! joint gradients on its own mini-batches against the shared, read-only
//! parameter snapshot. Gradients are averaged and applied once — exactly
//! the synchronous multi-GPU semantics whose ~2x scaling Table 2 reports.
//!
//! The trainer is stateful: it keeps one [`MatrixPool`] and one
//! [`Gradients`] buffer per worker across steps and epochs, so after the
//! first step the hot loop neither allocates tape intermediates nor
//! zero-fills gradient storage. Worker results are combined with
//! [`Gradients::merge_from`], which **moves** slots instead of cloning —
//! with row-sparse buffers the merge cost is O(touched rows), never
//! O(table).

use crate::model::{EpochStats, STTransRec, StepLosses};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::Dataset;
use st_tensor::{Gradients, MatrixPool};
use std::time::{Duration, Instant};

/// Data-parallel trainer over `workers` threads.
#[derive(Debug)]
pub struct ParallelTrainer {
    workers: usize,
    /// One tape-buffer pool per worker, reused across steps.
    pools: Vec<MatrixPool>,
    /// One gradient buffer per worker, cleared (storage retained) after
    /// each step.
    grads: Vec<Gradients>,
}

impl ParallelTrainer {
    /// Creates a trainer with the given worker count (1 = the sequential
    /// baseline column of Table 2).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Self {
            workers,
            pools: (0..workers).map(|_| MatrixPool::new()).collect(),
            grads: Vec::new(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Primes the per-worker gradient buffers for `model` (the buffers
    /// follow the model's configured representation). Buffers left over
    /// from a previous step are kept; a buffer whose arity does not match
    /// the model (different store, defaulted trainer) is replaced.
    fn ensure_buffers(&mut self, model: &STTransRec) {
        let arity = model.params().len();
        while self.grads.len() < self.workers {
            self.grads.push(model.new_grad_buffer());
        }
        for g in &mut self.grads {
            if g.arity() != arity {
                *g = model.new_grad_buffer();
            }
        }
    }

    /// One synchronous step: every worker computes a full joint-loss
    /// gradient on its own batches; gradients are averaged and applied.
    /// Worker pools and gradient buffers persist across calls.
    pub fn train_step(
        &mut self,
        model: &mut STTransRec,
        dataset: &Dataset,
        master_rng: &mut SmallRng,
    ) -> StepLosses {
        self.ensure_buffers(model);
        let seeds: Vec<u64> = (0..self.workers).map(|_| master_rng.gen()).collect();
        let losses = {
            let shared: &STTransRec = model;
            if self.workers == 1 {
                let mut rng = SmallRng::seed_from_u64(seeds[0]);
                let losses = shared.accumulate_step_with_pool(
                    dataset,
                    &mut self.grads[0],
                    &mut rng,
                    &mut self.pools[0],
                );
                vec![losses]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = seeds
                        .iter()
                        .zip(self.pools.iter_mut())
                        .zip(self.grads.iter_mut())
                        .map(|((&seed, pool), grads)| {
                            scope.spawn(move || {
                                let mut rng = SmallRng::seed_from_u64(seed);
                                shared.accumulate_step_with_pool(dataset, grads, &mut rng, pool)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect::<Vec<_>>()
                })
            }
        };
        // Move worker 0's buffer out, fold the rest in slot-by-slot (no
        // clones, sparse stays sparse), average, apply, and hand the
        // cleared union buffer back to worker 0 so its row capacity grows
        // toward the steady-state touch pattern.
        let mut merged = std::mem::take(&mut self.grads[0]);
        for g in &mut self.grads[1..] {
            merged.merge_from(std::mem::take(g));
        }
        if self.workers > 1 {
            merged.scale(1.0 / self.workers as f32);
        }
        model.apply(&merged);
        merged.clear();
        self.grads[0] = merged;
        // Workers 1.. lost their buffers to the merge; re-prime them so
        // the next step's threads start with matching arity.
        self.ensure_buffers(model);
        average_losses(&losses)
    }

    /// One epoch. With `w` workers, each step consumes `w` batches, so the
    /// per-epoch step count shrinks by `w` — same data budget, less wall
    /// clock, which is what Table 2 measures.
    pub fn train_epoch(&mut self, model: &mut STTransRec, dataset: &Dataset) -> TimedEpoch {
        let steps = (model.steps_per_epoch() / self.workers).max(1);
        let mut master_rng = SmallRng::seed_from_u64(model.config().seed ^ 0x9E3779B97F4A7C15);
        let start = Instant::now();
        let mut sum = StepLosses::default();
        for _ in 0..steps {
            let l = self.train_step(model, dataset, &mut master_rng);
            sum.interaction_source += l.interaction_source;
            sum.interaction_target += l.interaction_target;
            sum.context_source += l.context_source;
            sum.context_target += l.context_target;
            sum.mmd += l.mmd;
        }
        let wall = start.elapsed();
        let n = steps as f32;
        let stats = EpochStats {
            epoch: model.history().len(),
            losses: StepLosses {
                interaction_source: sum.interaction_source / n,
                interaction_target: sum.interaction_target / n,
                context_source: sum.context_source / n,
                context_target: sum.context_target / n,
                mmd: sum.mmd / n,
            },
            steps,
        };
        TimedEpoch { stats, wall }
    }
}

/// Epoch statistics plus wall-clock duration (Table 2's unit of report).
#[derive(Debug, Clone)]
pub struct TimedEpoch {
    /// Averaged losses.
    pub stats: EpochStats,
    /// Wall-clock time of the epoch.
    pub wall: Duration,
}

fn average_losses(losses: &[StepLosses]) -> StepLosses {
    let n = losses.len() as f32;
    let mut avg = StepLosses::default();
    for l in losses {
        avg.interaction_source += l.interaction_source / n;
        avg.interaction_target += l.interaction_target / n;
        avg.context_source += l.context_source / n;
        avg.context_target += l.context_target / n;
        avg.mmd += l.mmd / n;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, STTransRec};
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn parallel_step_trains_and_stays_finite() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut trainer = ParallelTrainer::new(2);
        let mut rng = SmallRng::seed_from_u64(0);
        let l = trainer.train_step(&mut m, &d, &mut rng);
        assert!(l.interaction_source.is_finite() && l.interaction_source > 0.0);
        assert!(!m.params().has_non_finite());
    }

    #[test]
    fn two_workers_halve_steps_per_epoch() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let e1 = ParallelTrainer::new(1).train_epoch(&mut m, &d);
        let e2 = ParallelTrainer::new(2).train_epoch(&mut m, &d);
        assert_eq!(e2.stats.steps, (e1.stats.steps / 2).max(1));
    }

    #[test]
    fn parallel_training_converges_like_sequential() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut trainer = ParallelTrainer::new(2);
        let first = trainer.train_epoch(&mut m, &d).stats.losses;
        for _ in 0..2 {
            trainer.train_epoch(&mut m, &d);
        }
        let last = trainer.train_epoch(&mut m, &d).stats.losses;
        let f = first.interaction_source + first.interaction_target;
        let l = last.interaction_source + last.interaction_target;
        assert!(l < f, "parallel training did not reduce loss: {f} -> {l}");
    }

    #[test]
    fn trainer_buffers_stop_allocating_after_first_steps() {
        // The per-worker gradient buffers keep their storage across steps:
        // once the touch pattern stabilizes, allocated elements plateau.
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut trainer = ParallelTrainer::new(2);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..3 {
            trainer.train_step(&mut m, &d, &mut rng);
        }
        let warmed: usize = trainer.grads.iter().map(Gradients::allocated_elems).sum();
        for _ in 0..3 {
            trainer.train_step(&mut m, &d, &mut rng);
        }
        let after: usize = trainer.grads.iter().map(Gradients::allocated_elems).sum();
        assert!(warmed > 0, "buffers never materialized");
        // Batches vary, so allow the union to keep growing a little, but
        // it must stay the same order of magnitude (no per-step refill).
        assert!(
            after <= warmed * 2,
            "gradient buffers kept reallocating: {warmed} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        ParallelTrainer::new(0);
    }
}
