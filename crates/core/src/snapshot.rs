//! A frozen, self-contained copy of the trained parameters for serving.
//!
//! [`ModelSnapshot`] captures exactly what Eq. 12 inference needs — the
//! user and POI embedding tables plus the interaction tower's affine
//! layers — out of the live [`st_tensor::ParamStore`], detached from the
//! training state (optimizer moments, samplers, RNG, tape pool). It is
//! cheap to share across threads, scores pairs through the tape-free
//! [`InferCtx`] executor, and its outputs are bit-identical to the tape
//! path: capture copies parameters verbatim and both executors run the
//! same shared op layer, so a hot-swapped snapshot answers byte-for-byte
//! like the model it was captured from.
//!
//! Since the v2 snapshot container, the embedding tables are held as
//! [`TableStorage`] rather than owned matrices: a snapshot may gather
//! straight out of f16/int8 quantized rows or a memory-mapped checkpoint
//! ([`ModelSnapshot::from_mapped`]) with dequantization fused into the
//! gather. Live-capture snapshots keep owned f32 tables and the exact
//! bit-identity guarantee; quantized snapshots trade bounded per-row
//! error for 2–4x fewer resident bytes, policed by the top-k overlap
//! differential gates in this module's tests.

use crate::STTransRec;
use st_data::{PoiId, UserId};
use st_eval::Scorer;
use st_tensor::checkpoint::MappedParams;
use st_tensor::{Activation, InferCtx, Matrix, StorageEncoding, TableStorage};

/// Why a pair-scoring request was rejected before any compute ran.
///
/// Produced by the `try_*` scoring entry points, which validate request
/// shape up front so malformed input surfaces as a typed error at the
/// serving boundary (an HTTP 400) instead of a worker panic deep inside
/// the gather kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The user and POI slices differ in length.
    LengthMismatch {
        /// Number of user indices supplied.
        users: usize,
        /// Number of POI indices supplied.
        pois: usize,
    },
    /// A user index exceeds the snapshot's user table.
    UserOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of users the snapshot can score.
        limit: usize,
    },
    /// A POI index exceeds the snapshot's POI table.
    PoiOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of POIs the snapshot can score.
        limit: usize,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch { users, pois } => {
                write!(
                    f,
                    "pair slices must be parallel: {users} users vs {pois} pois"
                )
            }
            Self::UserOutOfRange { index, limit } => {
                write!(
                    f,
                    "user index {index} out of range (snapshot has {limit} users)"
                )
            }
            Self::PoiOutOfRange { index, limit } => {
                write!(
                    f,
                    "poi index {index} out of range (snapshot has {limit} pois)"
                )
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// Frozen embeddings + tower weights exposing tape-free `predict` /
/// `score_pairs`.
///
/// Capture one with [`STTransRec::snapshot`] (or
/// [`ModelSnapshot::capture`]) after training or a checkpoint restore;
/// the snapshot stays valid — and unchanged — however the live model
/// trains on.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    user_table: TableStorage,
    poi_table: TableStorage,
    /// The tower's `(weight, bias)` pairs, first layer to last.
    layers: Vec<(Matrix, Matrix)>,
    activation: Activation,
}

impl ModelSnapshot {
    /// Copies the current parameters of `model` into a frozen snapshot
    /// (owned f32 tables — the lossless live-capture path).
    pub fn capture(model: &STTransRec) -> Self {
        let store = model.params();
        let layers = model
            .tower()
            .layers()
            .iter()
            .map(|l| (store.get(l.weight()).clone(), store.get(l.bias()).clone()))
            .collect();
        Self {
            user_table: TableStorage::F32(store.get(model.user_emb().table()).clone()),
            poi_table: TableStorage::F32(store.get(model.poi_emb().table()).clone()),
            layers,
            activation: model.tower().activation(),
        }
    }

    /// Assembles a snapshot from already-validated pieces: embedding
    /// tables in any [`TableStorage`] representation plus the tower's
    /// `(weight, bias)` pairs. Shape coherence is checked here so a
    /// malformed checkpoint cannot produce a snapshot that panics later
    /// inside a gather.
    pub fn from_parts(
        user_table: TableStorage,
        poi_table: TableStorage,
        layers: Vec<(Matrix, Matrix)>,
        activation: Activation,
    ) -> std::io::Result<Self> {
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        if layers.is_empty() {
            return Err(bad("snapshot needs at least one tower layer".into()));
        }
        let mut width = user_table.cols() + poi_table.cols();
        for (i, (w, b)) in layers.iter().enumerate() {
            if w.rows() != width {
                return Err(bad(format!(
                    "tower layer {i}: weight expects {} inputs, got {width}",
                    w.rows()
                )));
            }
            if b.rows() != 1 || b.cols() != w.cols() {
                return Err(bad(format!(
                    "tower layer {i}: bias shape {:?} does not match width {}",
                    b.shape(),
                    w.cols()
                )));
            }
            width = w.cols();
        }
        if width != 1 {
            return Err(bad(format!(
                "tower must end in a single logit, ends in {width}"
            )));
        }
        Ok(Self {
            user_table,
            poi_table,
            layers,
            activation,
        })
    }

    /// Reconstructs a serving snapshot straight from a mapped (or
    /// owned-parse) v2 checkpoint — no [`STTransRec`], no training
    /// state, no table decode. Embedding tables stay in whatever
    /// representation the checkpoint stores (quantized rows gather
    /// fused-dequantized; mapped f32 gathers zero-copy); the small dense
    /// tower layers are decoded to owned matrices. The tower activation
    /// is ReLU, the only activation the model constructor emits.
    pub fn from_mapped(params: &MappedParams) -> std::io::Result<Self> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let user_table = params
            .get("user_emb")
            .ok_or_else(|| bad("checkpoint has no user_emb table"))?
            .clone();
        let poi_table = params
            .get("poi_emb")
            .ok_or_else(|| bad("checkpoint has no poi_emb table"))?
            .clone();
        let mut layers = Vec::new();
        for i in 0.. {
            let (Some(w), Some(b)) = (
                params.matrix(&format!("tower.{i}.w")),
                params.matrix(&format!("tower.{i}.b")),
            ) else {
                break;
            };
            layers.push((w, b));
        }
        Self::from_parts(user_table, poi_table, layers, Activation::Relu)
    }

    /// Re-encodes the embedding tables into `encoding` (the tower stays
    /// f32), e.g. to serve int8 from a snapshot captured live.
    pub fn quantized(&self, encoding: StorageEncoding) -> Self {
        let requant = |t: &TableStorage| TableStorage::encode(&t.to_matrix(), encoding);
        Self {
            user_table: requant(&self.user_table),
            poi_table: requant(&self.poi_table),
            layers: self.layers.clone(),
            activation: self.activation,
        }
    }

    /// The storage encoding of the embedding tables.
    pub fn encoding(&self) -> StorageEncoding {
        self.poi_table.encoding()
    }

    /// Bytes of embedding-table storage this snapshot holds (or maps).
    pub fn table_bytes(&self) -> usize {
        self.user_table.stored_bytes() + self.poi_table.stored_bytes()
    }

    /// True when the tables are served out of a memory-mapped
    /// checkpoint rather than owned buffers.
    pub fn is_mapped(&self) -> bool {
        self.user_table.is_mapped() || self.poi_table.is_mapped()
    }

    /// Number of users the snapshot can score.
    pub fn num_users(&self) -> usize {
        self.user_table.rows()
    }

    /// Number of POIs the snapshot can score.
    pub fn num_pois(&self) -> usize {
        self.poi_table.rows()
    }

    /// The frozen city-independent POI embedding table (one row per
    /// POI) in its storage representation — the vectors the IVF coarse
    /// index quantizes, gathered via [`st_tensor::RowSource`] so index
    /// build works unchanged over quantized or mapped tables.
    pub fn poi_table(&self) -> &TableStorage {
        &self.poi_table
    }

    /// Runs the tower + sigmoid over whatever `ctx` currently holds.
    fn run_tower(&self, ctx: &mut InferCtx) -> Vec<f32> {
        let last = self.layers.len() - 1;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            ctx.linear(w, b);
            if i < last {
                ctx.activation(self.activation);
            }
        }
        ctx.sigmoid();
        ctx.value().as_slice().to_vec()
    }

    /// The unchecked forward pass; callers have already validated shape
    /// (or accepted the underlying kernels' panics).
    fn forward(&self, ctx: &mut InferCtx, users: &[usize], pois: &[usize]) -> Vec<f32> {
        ctx.gather_concat2(&self.user_table, users, &self.poi_table, pois);
        self.run_tower(ctx)
    }

    /// Predicted interaction probabilities for `(user, poi)` pairs given
    /// as parallel index slices — Eq. 12 over the frozen parameters.
    ///
    /// # Panics
    /// Panics if the slices differ in length or any index is out of
    /// range. Request paths that must not panic on malformed input go
    /// through [`ModelSnapshot::try_predict_with`] instead.
    pub fn predict(&self, users: &[usize], pois: &[usize]) -> Vec<f32> {
        let mut ctx = InferCtx::new();
        self.predict_with(&mut ctx, users, pois)
    }

    /// As [`ModelSnapshot::predict`], reusing the caller's scratch
    /// buffers — the zero-allocation steady-state path long-lived
    /// consumers (the serve batcher) score through.
    pub fn predict_with(&self, ctx: &mut InferCtx, users: &[usize], pois: &[usize]) -> Vec<f32> {
        debug_assert_eq!(users.len(), pois.len(), "pair slices must be parallel");
        self.forward(ctx, users, pois)
    }

    /// Validating variant of [`ModelSnapshot::predict_with`]: malformed
    /// input (mismatched slice lengths, out-of-range indices) returns a
    /// [`PredictError`] before any compute runs, instead of panicking a
    /// worker thread.
    pub fn try_predict_with(
        &self,
        ctx: &mut InferCtx,
        users: &[usize],
        pois: &[usize],
    ) -> Result<Vec<f32>, PredictError> {
        if users.len() != pois.len() {
            return Err(PredictError::LengthMismatch {
                users: users.len(),
                pois: pois.len(),
            });
        }
        if let Some(&index) = users.iter().find(|&&i| i >= self.num_users()) {
            return Err(PredictError::UserOutOfRange {
                index,
                limit: self.num_users(),
            });
        }
        if let Some(&index) = pois.iter().find(|&&i| i >= self.num_pois()) {
            return Err(PredictError::PoiOutOfRange {
                index,
                limit: self.num_pois(),
            });
        }
        Ok(self.forward(ctx, users, pois))
    }

    /// Typed-id variant of [`ModelSnapshot::predict`].
    pub fn score_pairs(&self, users: &[UserId], pois: &[PoiId]) -> Vec<f32> {
        let mut ctx = InferCtx::new();
        self.score_pairs_with(&mut ctx, users, pois)
    }

    /// As [`ModelSnapshot::score_pairs`], reusing the caller's scratch
    /// buffers.
    pub fn score_pairs_with(
        &self,
        ctx: &mut InferCtx,
        users: &[UserId],
        pois: &[PoiId],
    ) -> Vec<f32> {
        let u: Vec<usize> = users.iter().map(|u| u.idx()).collect();
        let p: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.predict_with(ctx, &u, &p)
    }

    /// Validating typed-id variant of
    /// [`ModelSnapshot::score_pairs_with`] — the serve boundary's entry
    /// point, mapping malformed requests to [`PredictError`] instead of
    /// a panic.
    pub fn try_score_pairs_with(
        &self,
        ctx: &mut InferCtx,
        users: &[UserId],
        pois: &[PoiId],
    ) -> Result<Vec<f32>, PredictError> {
        let u: Vec<usize> = users.iter().map(|u| u.idx()).collect();
        let p: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.try_predict_with(ctx, &u, &p)
    }

    /// Scores user row `user_row` against every row of `items`, an
    /// arbitrary matrix in POI-embedding space (IVF centroids, say),
    /// through the same tower as real POIs. This is how probe selection
    /// ranks coarse-index lists with the *re-ranker's own* scoring
    /// function rather than a separate metric.
    ///
    /// # Panics
    /// Panics if `user_row` is out of range or `items` has the wrong
    /// width.
    pub fn score_rows_with(&self, ctx: &mut InferCtx, user_row: usize, items: &Matrix) -> Vec<f32> {
        let n = items.rows();
        let ui = vec![user_row; n];
        let ii: Vec<usize> = (0..n).collect();
        ctx.gather_concat2(&self.user_table, &ui, items, &ii);
        self.run_tower(ctx)
    }
}

impl Scorer for ModelSnapshot {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        let users = vec![user.idx(); pois.len()];
        let poi_rows: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.predict(&users, &poi_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, Variant};
    use st_data::synth::{generate, SynthConfig};
    use st_data::{CityId, CrossingCitySplit, Dataset};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn capture_scores_bitwise_like_the_live_model_across_variants() {
        let (d, split) = setup();
        for variant in [Variant::Full, Variant::NoMmd, Variant::NoText] {
            let mut m =
                STTransRec::new(&d, &split, ModelConfig::test_small().with_variant(variant));
            m.train_epoch(&d);
            let snap = m.snapshot();
            let pois: Vec<usize> = d
                .pois_in_city(split.target_city)
                .iter()
                .map(|p| p.idx())
                .collect();
            let users = vec![1usize; pois.len()];
            assert_eq!(
                snap.predict(&users, &pois),
                m.predict_tape(&users, &pois),
                "snapshot diverged from the tape oracle for {variant:?}"
            );
        }
    }

    #[test]
    fn snapshot_is_frozen_while_the_model_trains_on() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let snap = m.snapshot();
        let pois = d.pois_in_city(split.target_city);
        let before = snap.score_batch(UserId(0), pois);
        m.train_epoch(&d); // live parameters move
        assert_eq!(snap.score_batch(UserId(0), pois), before);
        assert_ne!(m.score_batch(UserId(0), pois), before);
    }

    #[test]
    fn scorer_round_trip_matches_model_scorer() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let snap = m.snapshot();
        let pois = d.pois_in_city(split.target_city);
        assert_eq!(
            snap.score_batch(UserId(2), pois),
            m.score_batch(UserId(2), pois)
        );
        assert_eq!(
            (snap.num_users(), snap.num_pois()),
            (d.num_users(), d.num_pois())
        );
    }

    #[test]
    fn evaluation_through_the_snapshot_matches_the_live_model() {
        use st_eval::{evaluate, EvalConfig};
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let snap = m.snapshot();
        let cfg = EvalConfig::default();
        assert_eq!(
            evaluate(&snap, &d, &split, &cfg),
            evaluate(&m, &d, &split, &cfg)
        );
    }

    #[test]
    fn try_variants_reject_malformed_input_and_match_the_panicking_path() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let snap = m.snapshot();
        let mut ctx = InferCtx::new();
        // Well-formed input: identical to the panicking path.
        let users = vec![0usize, 1, 2];
        let pois = vec![3usize, 4, 5];
        assert_eq!(
            snap.try_predict_with(&mut ctx, &users, &pois).unwrap(),
            snap.predict(&users, &pois)
        );
        // Mismatched lengths.
        assert_eq!(
            snap.try_predict_with(&mut ctx, &users, &pois[..2]),
            Err(PredictError::LengthMismatch { users: 3, pois: 2 })
        );
        // Out-of-range indices.
        let nu = snap.num_users();
        let np = snap.num_pois();
        assert_eq!(
            snap.try_predict_with(&mut ctx, &[nu], &[0]),
            Err(PredictError::UserOutOfRange {
                index: nu,
                limit: nu
            })
        );
        assert_eq!(
            snap.try_predict_with(&mut ctx, &[0], &[np]),
            Err(PredictError::PoiOutOfRange {
                index: np,
                limit: np
            })
        );
        // Typed-id boundary wrapper agrees.
        assert_eq!(
            snap.try_score_pairs_with(&mut ctx, &[UserId(0)], &[PoiId(0), PoiId(1)]),
            Err(PredictError::LengthMismatch { users: 1, pois: 2 })
        );
    }

    #[test]
    fn score_rows_against_real_poi_rows_matches_predict() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let snap = m.snapshot();
        let mut ctx = InferCtx::new();
        let n = snap.num_pois().min(7);
        let pois: Vec<usize> = (0..n).collect();
        let users = vec![2usize; n];
        // Scoring the full POI table as an "arbitrary matrix" must be
        // bit-identical to the indexed predict path over the same rows.
        let via_rows = {
            let table = snap.poi_table().to_matrix();
            let sub = st_tensor::Matrix::from_vec(
                n,
                table.cols(),
                pois.iter().flat_map(|&p| table.row(p).to_vec()).collect(),
            );
            snap.score_rows_with(&mut ctx, 2, &sub)
        };
        assert_eq!(via_rows, snap.predict(&users, &pois));
    }

    #[test]
    fn scratch_reuse_reaches_zero_allocation_steady_state() {
        let (d, split) = setup();
        let m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let snap = m.snapshot();
        let pois: Vec<usize> = d
            .pois_in_city(split.target_city)
            .iter()
            .map(|p| p.idx())
            .collect();
        let users = vec![0usize; pois.len()];
        let mut ctx = InferCtx::new();
        for _ in 0..3 {
            snap.predict_with(&mut ctx, &users, &pois);
        }
        let settled = ctx.grow_events();
        for _ in 0..10 {
            snap.predict_with(&mut ctx, &users, &pois);
        }
        assert_eq!(ctx.grow_events(), settled, "scoring kept reallocating");
    }
}
