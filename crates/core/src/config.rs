//! Hyperparameter configuration (Sec. 4.1, "Implementation Details") and
//! the ablation variants of Sec. 4.2.2.

/// Which MMD estimator the transfer layer uses (Sec. 3.2 argues for the
/// linear-time statistic of [16] to reach O(D) per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmdEstimator {
    /// Full quadratic U-statistic over the batch (Eq. 10).
    Quadratic,
    /// Linear-time paired statistic (Gretton et al. [15], Sec. 6).
    Linear,
}

/// Ablation variants of ST-TransRec (Sec. 4.1, "Baselines").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full model.
    Full,
    /// ST-TransRec-1: MMD loss removed (`lambda = 0`).
    NoMmd,
    /// ST-TransRec-2: textual context prediction removed.
    NoText,
    /// ST-TransRec-3: density-based resampling removed (`alpha = 0`).
    NoResample,
}

/// All hyperparameters of ST-TransRec.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Embedding size for users, POIs and words (64 on Foursquare,
    /// 128 on Yelp).
    pub embedding_dim: usize,
    /// Hidden widths of the interaction tower, excluding the concatenated
    /// input (`2 * embedding_dim`) and the final scalar. Foursquare:
    /// `[64, 32, 16]` giving 128 -> 64 -> 32 -> 16 -> 1.
    pub hidden: Vec<usize>,
    /// Adam learning rate (searched over {1e-5 .. 5e-3} in the paper).
    pub learning_rate: f32,
    /// Mini-batch size (paper: 128 positive interactions).
    pub batch_size: usize,
    /// Negative interactions sampled per positive (paper: 4, after NCF).
    pub negatives: usize,
    /// Skipgram negative words per positive context edge.
    pub context_negatives: usize,
    /// Context edges sampled per training step for each side's `L_Gvw`.
    /// Skipgram rows are two orders of magnitude cheaper than tower rows,
    /// so this runs much larger than `batch_size` — each edge must be
    /// visited tens of times for the text bridge to form.
    pub context_batch: usize,
    /// Decoupled (AdamW-style) weight decay on all parameters; small but
    /// non-zero to keep long runs from memorizing source interactions.
    pub weight_decay: f32,
    /// MMD loss weight `lambda` in Eq. 3.
    pub lambda: f32,
    /// Gaussian kernel bandwidth `sigma` (fixed, per Sec. 3.1.4).
    pub mmd_sigma: f32,
    /// Which MMD estimator to use.
    pub mmd_estimator: MmdEstimator,
    /// POIs sampled per city side for each MMD term.
    pub mmd_batch: usize,
    /// Resampling punishment rate `alpha` in [0, 1] (0.10 / 0.11 optimal).
    pub alpha: f64,
    /// Region-merge threshold `delta` of Algorithm 1 (0.10 / 0.25).
    pub delta: f64,
    /// City grid resolution `n` (n x n grids; 50 / 60 in the paper).
    pub grid_n: usize,
    /// Dropout rate `rho` on embeddings and hidden layers (0.1 / 0.2).
    pub dropout: f32,
    /// Training epochs (one epoch visits every training check-in once in
    /// expectation).
    pub epochs: usize,
    /// Negative-sampling distribution exponent for skipgram words
    /// (0.75 = word2vec; 0.0 = uniform ablation).
    pub unigram_power: f64,
    /// Ablation variant.
    pub variant: Variant,
    /// RNG seed for initialization and batch sampling.
    pub seed: u64,
    /// Row-sparse gradient buffers: embedding gradients store only the
    /// rows a step touched, so per-step cost and memory scale with the
    /// batch, not the table. `false` forces the dense-oracle buffers.
    pub sparse_gradients: bool,
    /// Lazy Adam: untouched embedding rows cost nothing per step, with
    /// decayed-moment catch-up when next touched (see st-tensor's optim
    /// docs for the exact semantics). `false` selects the dense oracle
    /// that walks every weight of every touched parameter.
    pub lazy_optimizer: bool,
    /// Row-range shards for the optimizer apply on large embedding
    /// tables (1 = single-threaded; must be >= 1).
    pub optimizer_shards: usize,
}

impl ModelConfig {
    /// The paper's Foursquare configuration: embedding 64, tower
    /// 128 -> 64 -> 32 -> 16 -> 1, `n = 50`, `delta = 0.10`, `alpha = 0.10`,
    /// dropout 0.1.
    pub fn foursquare() -> Self {
        Self {
            embedding_dim: 64,
            hidden: vec![64, 32, 16],
            learning_rate: 1e-3,
            batch_size: 128,
            negatives: 4,
            context_negatives: 4,
            context_batch: 1024,
            weight_decay: 1e-5,
            // The source side is a four-city mixture; hard alignment at
            // lambda = 1 over-constrains it, so Foursquare runs softer.
            lambda: 0.3,
            mmd_sigma: 1.0,
            mmd_estimator: MmdEstimator::Quadratic,
            mmd_batch: 64,
            alpha: 0.10,
            delta: 0.10,
            grid_n: 50,
            dropout: 0.1,
            epochs: 5,
            unigram_power: 0.75,
            variant: Variant::Full,
            seed: 1,
            sparse_gradients: true,
            lazy_optimizer: true,
            optimizer_shards: 1,
        }
    }

    /// The paper's Yelp configuration: embedding 128, tower
    /// 256 -> 128 -> 64 -> 32 -> 1, `n = 60`, `delta = 0.25`,
    /// `alpha = 0.11`, dropout 0.2.
    pub fn yelp() -> Self {
        Self {
            embedding_dim: 128,
            hidden: vec![128, 64, 32],
            learning_rate: 1e-3,
            batch_size: 128,
            negatives: 4,
            context_negatives: 4,
            // 256 (vs Foursquare's 1024): Yelp's denser interactions make
            // text a complement, not the primary signal; at 1024 the text
            // loss alone aligns the spaces and the MMD term goes idle.
            context_batch: 256,
            weight_decay: 1e-5,
            lambda: 1.0,
            mmd_sigma: 1.0,
            mmd_estimator: MmdEstimator::Quadratic,
            mmd_batch: 64,
            alpha: 0.11,
            delta: 0.25,
            grid_n: 60,
            dropout: 0.2,
            epochs: 5,
            unigram_power: 0.75,
            variant: Variant::Full,
            seed: 1,
            sparse_gradients: true,
            lazy_optimizer: true,
            optimizer_shards: 1,
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn test_small() -> Self {
        Self {
            embedding_dim: 16,
            hidden: vec![16, 8],
            learning_rate: 5e-3,
            batch_size: 64,
            negatives: 4,
            context_negatives: 3,
            context_batch: 256,
            weight_decay: 1e-5,
            lambda: 0.5,
            mmd_sigma: 1.0,
            mmd_estimator: MmdEstimator::Quadratic,
            mmd_batch: 32,
            alpha: 0.10,
            delta: 0.10,
            grid_n: 8,
            dropout: 0.0,
            epochs: 3,
            unigram_power: 0.75,
            variant: Variant::Full,
            seed: 1,
            sparse_gradients: true,
            lazy_optimizer: true,
            optimizer_shards: 1,
        }
    }

    /// Applies an ablation variant, adjusting the implied hyperparameters
    /// (the paper sets `alpha = 0` for ST-TransRec-3 and drops the MMD
    /// term for ST-TransRec-1).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        if variant == Variant::NoResample {
            self.alpha = 0.0;
        }
        self
    }

    /// Overrides the embedding size, keeping the paper's 2x tower shape
    /// (used by the Table 4 sweep).
    pub fn with_embedding_dim(mut self, dim: usize) -> Self {
        assert!(dim >= 4, "embedding too small");
        self.embedding_dim = dim;
        self.hidden = vec![dim, dim / 2, (dim / 4).max(1)];
        self
    }

    /// Overrides the tower depth, halving widths from `2 * embedding_dim`
    /// (used by the Table 5 sweep: depth 1..=4).
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "need at least one hidden layer");
        let mut widths = Vec::with_capacity(depth);
        let mut w = self.embedding_dim;
        for _ in 0..depth {
            widths.push(w.max(1));
            w /= 2;
        }
        self.hidden = widths;
        self
    }

    /// Full tower widths including the concatenated input and scalar head.
    pub fn tower_widths(&self) -> Vec<usize> {
        let mut widths = Vec::with_capacity(self.hidden.len() + 2);
        widths.push(2 * self.embedding_dim);
        widths.extend_from_slice(&self.hidden);
        widths.push(1);
        widths
    }

    /// Whether the MMD term is active under the current variant.
    pub fn use_mmd(&self) -> bool {
        self.variant != Variant::NoMmd && self.lambda > 0.0
    }

    /// Whether the skipgram text loss is active under the current variant.
    pub fn use_text(&self) -> bool {
        self.variant != Variant::NoText
    }

    /// Validates invariants; called by the model constructor.
    pub fn validate(&self) {
        assert!(self.embedding_dim > 0);
        assert!(!self.hidden.is_empty(), "tower needs hidden layers");
        assert!(self.learning_rate > 0.0);
        assert!(self.batch_size > 0);
        assert!(self.negatives > 0);
        assert!(self.mmd_batch >= 2, "MMD needs at least 2 samples per side");
        assert!(self.context_batch > 0);
        assert!(self.weight_decay >= 0.0);
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
        assert!((0.0..=1.0).contains(&self.delta), "delta must be in [0, 1]");
        assert!(self.grid_n > 0);
        assert!((0.0..1.0).contains(&self.dropout));
        assert!(self.mmd_sigma > 0.0);
        assert!(self.lambda >= 0.0);
        assert!(self.optimizer_shards >= 1, "optimizer_shards must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_section_4_1() {
        let fsq = ModelConfig::foursquare();
        assert_eq!(fsq.tower_widths(), vec![128, 64, 32, 16, 1]);
        assert_eq!(fsq.grid_n, 50);
        assert!((fsq.delta - 0.10).abs() < 1e-12);
        assert!((fsq.alpha - 0.10).abs() < 1e-12);
        assert!((fsq.dropout - 0.1).abs() < 1e-6);

        let yelp = ModelConfig::yelp();
        assert_eq!(yelp.tower_widths(), vec![256, 128, 64, 32, 1]);
        assert_eq!(yelp.grid_n, 60);
        assert!((yelp.delta - 0.25).abs() < 1e-12);
        assert!((yelp.alpha - 0.11).abs() < 1e-12);
        assert!((yelp.dropout - 0.2).abs() < 1e-6);
        fsq.validate();
        yelp.validate();
    }

    #[test]
    fn variants_toggle_losses() {
        let base = ModelConfig::test_small();
        assert!(base.use_mmd() && base.use_text());
        let v1 = base.clone().with_variant(Variant::NoMmd);
        assert!(!v1.use_mmd() && v1.use_text());
        let v2 = base.clone().with_variant(Variant::NoText);
        assert!(v2.use_mmd() && !v2.use_text());
        let v3 = base.clone().with_variant(Variant::NoResample);
        assert_eq!(v3.alpha, 0.0);
        assert!(v3.use_mmd() && v3.use_text());
    }

    #[test]
    fn embedding_and_depth_sweeps_produce_paper_towers() {
        let c = ModelConfig::foursquare().with_embedding_dim(32);
        assert_eq!(c.tower_widths(), vec![64, 32, 16, 8, 1]);
        let c = ModelConfig::foursquare().with_depth(2);
        assert_eq!(c.tower_widths(), vec![128, 64, 32, 1]);
        let c = ModelConfig::foursquare().with_depth(4);
        assert_eq!(c.tower_widths(), vec![128, 64, 32, 16, 8, 1]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn validate_rejects_bad_alpha() {
        let mut c = ModelConfig::test_small();
        c.alpha = 1.5;
        c.validate();
    }
}
