//! The MMD transfer layer (Sec. 2.1 and Eq. 10).
//!
//! Given resampled batches of source- and target-city POI embeddings, the
//! layer computes the squared Maximum Mean Discrepancy under a Gaussian
//! kernel with fixed bandwidth. Minimizing it (weighted by `lambda` in
//! Eq. 3) pulls the two embedding distributions together — the transfer
//! mechanism that strips city-dependent features.
//!
//! Two estimators are provided, matching the paper's complexity analysis
//! (Sec. 3.2): the full quadratic U-statistic and the O(D) linear-time
//! paired statistic from Gretton et al. [15, Sec. 6] as used by JAN [16].

use crate::MmdEstimator;
use st_tensor::{Matrix, Tape, Var};

/// Builds the differentiable MMD loss between `source` (`ns x d`) and
/// `target` (`nt x d`) embedding batches on `tape`.
///
/// The quadratic estimator runs through the fused
/// [`Tape::gaussian_kernel`] op (single pairwise-distance kernel forward,
/// analytic backward). [`mmd_loss_reference`] is the same statistic built
/// from tape primitives over the naive matmul kernels, kept as the
/// differential-test and benchmark baseline.
///
/// Returns a `1 x 1` scalar variable. For [`MmdEstimator::Linear`], both
/// batches are truncated to the same even length.
///
/// # Panics
/// Panics if either batch has fewer than 2 rows or dimensions mismatch.
pub fn mmd_loss(
    tape: &mut Tape<'_>,
    source: Var,
    target: Var,
    sigma: f32,
    estimator: MmdEstimator,
) -> Var {
    mmd_loss_impl(tape, source, target, sigma, estimator, true)
}

/// Reference implementation of [`mmd_loss`]: the quadratic path uses the
/// composite Gaussian kernel over the naive matmul kernels. Functionally
/// identical (same statistic, same gradients up to float rounding);
/// exists so benches and tests can compare the fused path end to end.
pub fn mmd_loss_reference(
    tape: &mut Tape<'_>,
    source: Var,
    target: Var,
    sigma: f32,
    estimator: MmdEstimator,
) -> Var {
    mmd_loss_impl(tape, source, target, sigma, estimator, false)
}

fn mmd_loss_impl(
    tape: &mut Tape<'_>,
    source: Var,
    target: Var,
    sigma: f32,
    estimator: MmdEstimator,
    fused: bool,
) -> Var {
    let (ns, d) = tape.value(source).shape();
    let (nt, dt) = tape.value(target).shape();
    assert_eq!(d, dt, "embedding dims differ");
    assert!(ns >= 2 && nt >= 2, "MMD needs at least 2 samples per side");
    match estimator {
        MmdEstimator::Quadratic => {
            let kernel = |t: &mut Tape<'_>, a: Var, b: Var| {
                if fused {
                    t.gaussian_kernel(a, b, sigma)
                } else {
                    t.gaussian_kernel_composite(a, b, sigma)
                }
            };
            let kss = kernel(tape, source, source);
            let ktt = kernel(tape, target, target);
            let kst = kernel(tape, source, target);
            let mss = tape.mean_all(kss);
            let mtt = tape.mean_all(ktt);
            let mst = tape.mean_all(kst);
            let sum = tape.add(mss, mtt);
            let neg = tape.scale(mst, -2.0);
            tape.add(sum, neg)
        }
        MmdEstimator::Linear => {
            // h((x1,y1),(x2,y2)) = k(x1,x2) + k(y1,y2) - k(x1,y2) - k(x2,y1),
            // averaged over consecutive non-overlapping pairs.
            let m = (ns.min(nt) / 2) * 2;
            let (even, odd) = split_even_odd_rows(tape, source, m);
            let (teven, todd) = split_even_odd_rows(tape, target, m);
            let kxx = rowwise_gaussian(tape, even, odd, sigma);
            let kyy = rowwise_gaussian(tape, teven, todd, sigma);
            let kxy = rowwise_gaussian(tape, even, todd, sigma);
            let kyx = rowwise_gaussian(tape, odd, teven, sigma);
            let a = tape.add(kxx, kyy);
            let b = tape.add(kxy, kyx);
            let h = tape.sub(a, b);
            tape.mean_all(h)
        }
    }
}

/// Splits the first `m` rows (m even) of `x` into even rows and odd rows.
fn split_even_odd_rows(tape: &mut Tape<'_>, x: Var, m: usize) -> (Var, Var) {
    // Gathers through a selection matrix would lose sparsity; instead we
    // exploit that MMD batches come from `gather_param` anyway — but here
    // `x` is an arbitrary node, so we build selection via two constant
    // 0/1 matrices and matmul (differentiable, and m is small).
    let cols = tape.value(x).rows();
    let half = m / 2;
    let mut sel_even = Matrix::zeros(half, cols);
    let mut sel_odd = Matrix::zeros(half, cols);
    for i in 0..half {
        sel_even.set(i, 2 * i, 1.0);
        sel_odd.set(i, 2 * i + 1, 1.0);
    }
    let se = tape.input(sel_even);
    let so = tape.input(sel_odd);
    (tape.matmul(se, x), tape.matmul(so, x))
}

/// Rowwise Gaussian kernel between corresponding rows of `a` and `b`
/// (`n x 1` output): `exp(-||a_i - b_i||^2 / (2 sigma^2))`.
fn rowwise_gaussian(tape: &mut Tape<'_>, a: Var, b: Var, sigma: f32) -> Var {
    let diff = tape.sub(a, b);
    let sq = tape.mul_elem(diff, diff);
    let dist = tape.sum_cols(sq);
    let scaled = tape.scale(dist, -1.0 / (2.0 * sigma * sigma));
    tape.exp(scaled)
}

/// Non-differentiable quadratic MMD^2 on plain matrices (for tests,
/// diagnostics and benches).
pub fn mmd_value(source: &Matrix, target: &Matrix, sigma: f32) -> f32 {
    let k = |a: &Matrix, b: &Matrix| -> f32 {
        let mut acc = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let d2: f32 = a
                    .row(i)
                    .iter()
                    .zip(b.row(j))
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum();
                acc += (-d2 / (2.0 * sigma * sigma)).exp() as f64;
            }
        }
        (acc / (a.rows() as f64 * b.rows() as f64)) as f32
    };
    k(source, source) + k(target, target) - 2.0 * k(source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use st_tensor::{Gradients, Init, ParamStore};

    fn random_matrix(rows: usize, cols: usize, seed: u64, shift: f32) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Init::Gaussian { std: 1.0 }.sample(rows, cols, &mut rng);
        m.map_inplace(|x| x + shift);
        m
    }

    #[test]
    fn identical_distributions_give_near_zero_mmd() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = random_matrix(40, 4, 1, 0.0);
        let a = tape.input(x.clone());
        let b = tape.input(x);
        let loss = mmd_loss(&mut tape, a, b, 1.0, MmdEstimator::Quadratic);
        // Same samples: biased V-statistic is small but nonnegative here.
        let v = tape.value(loss).item();
        assert!(v.abs() < 0.05, "MMD of identical batches: {v}");
    }

    #[test]
    fn shifted_distributions_give_large_mmd() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(random_matrix(40, 4, 1, 0.0));
        let b = tape.input(random_matrix(40, 4, 2, 3.0));
        // With sigma = 2 the kernel sees the shift clearly.
        let loss = mmd_loss(&mut tape, a, b, 2.0, MmdEstimator::Quadratic);
        let far = tape.value(loss).item();
        let a2 = tape.input(random_matrix(40, 4, 3, 0.0));
        let b2 = tape.input(random_matrix(40, 4, 4, 0.0));
        let near_loss = mmd_loss(&mut tape, a2, b2, 2.0, MmdEstimator::Quadratic);
        let near = tape.value(near_loss).item();
        assert!(far > 0.3, "shifted MMD too small: {far}");
        assert!(
            far > 10.0 * near.abs().max(1e-3),
            "no separation: {far} vs {near}"
        );
    }

    #[test]
    fn quadratic_tape_matches_plain_value() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = random_matrix(16, 3, 3, 0.0);
        let y = random_matrix(12, 3, 4, 1.0);
        let a = tape.input(x.clone());
        let b = tape.input(y.clone());
        let loss = mmd_loss(&mut tape, a, b, 1.2, MmdEstimator::Quadratic);
        let expect = mmd_value(&x, &y, 1.2);
        assert!((tape.value(loss).item() - expect).abs() < 1e-4);
    }

    #[test]
    fn linear_estimator_tracks_quadratic_in_expectation() {
        // Averaged over many draws, the linear statistic approximates the
        // quadratic one: both near zero for equal dists, both large for
        // shifted dists, with the same ordering.
        let store = ParamStore::new();
        let eval = |shift: f32, est: MmdEstimator| -> f32 {
            let mut acc = 0.0;
            let reps = 20;
            for r in 0..reps {
                let mut tape = Tape::new(&store);
                let a = tape.input(random_matrix(64, 4, 100 + r, 0.0));
                let b = tape.input(random_matrix(64, 4, 200 + r, shift));
                let l = mmd_loss(&mut tape, a, b, 2.0, est);
                acc += tape.value(l).item();
            }
            acc / reps as f32
        };
        let lin_same = eval(0.0, MmdEstimator::Linear);
        let lin_far = eval(2.0, MmdEstimator::Linear);
        let quad_far = eval(2.0, MmdEstimator::Quadratic);
        assert!(lin_same.abs() < 0.1, "linear MMD same dist: {lin_same}");
        assert!(lin_far > 0.2, "linear MMD shifted: {lin_far}");
        assert!(
            (lin_far - quad_far).abs() < 0.3 * quad_far.max(0.1),
            "linear {lin_far} vs quadratic {quad_far}"
        );
    }

    #[test]
    fn fused_quadratic_matches_reference_value_and_gradients() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let s = store.register("s", 12, 5, Init::Gaussian { std: 1.0 }, &mut rng);
        let t = store.register("t", 10, 5, Init::Gaussian { std: 1.0 }, &mut rng);

        let run = |fused: bool| -> (f32, Matrix, Matrix) {
            let mut tape = Tape::new(&store);
            let a = tape.param(s);
            let b = tape.param(t);
            let loss = if fused {
                mmd_loss(&mut tape, a, b, 1.1, MmdEstimator::Quadratic)
            } else {
                mmd_loss_reference(&mut tape, a, b, 1.1, MmdEstimator::Quadratic)
            };
            let v = tape.value(loss).item();
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            (
                v,
                grads.get(s).unwrap().clone(),
                grads.get(t).unwrap().clone(),
            )
        };
        let (vf, gsf, gtf) = run(true);
        let (vr, gsr, gtr) = run(false);
        assert!(
            (vf - vr).abs() < 1e-5,
            "fused MMD value diverges: {vf} vs {vr}"
        );
        assert!(gsf.approx_eq(&gsr, 1e-5), "fused source grads diverge");
        assert!(gtf.approx_eq(&gtr, 1e-5), "fused target grads diverge");
    }

    #[test]
    fn gradients_flow_into_both_sides() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let s = store.register("s", 8, 3, Init::Gaussian { std: 1.0 }, &mut rng);
        let t = store.register("t", 8, 3, Init::Gaussian { std: 1.0 }, &mut rng);
        for est in [MmdEstimator::Quadratic, MmdEstimator::Linear] {
            let mut tape = Tape::new(&store);
            let a = tape.param(s);
            let b = tape.param(t);
            let loss = mmd_loss(&mut tape, a, b, 1.0, est);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            assert!(grads.get(s).is_some(), "{est:?}: no source grad");
            assert!(grads.get(t).is_some(), "{est:?}: no target grad");
            assert!(grads.get(s).unwrap().max_abs() > 0.0);
        }
    }

    #[test]
    fn minimizing_mmd_aligns_distributions() {
        // Gradient-descend target embeddings toward a fixed source batch;
        // MMD must drop substantially. This is the transfer layer's job.
        use st_tensor::{Optimizer, Sgd};
        let mut rng = SmallRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let t = store.register("t", 16, 3, Init::Gaussian { std: 0.5 }, &mut rng);
        // Offset initial target by +2.
        store.get_mut(t).map_inplace(|x| x + 2.0);
        let source = random_matrix(16, 3, 6, 0.0);

        let mut opt = Sgd::new(0.5);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..400 {
            let mut tape = Tape::new(&store);
            let sv = tape.input(source.clone());
            let tv = tape.param(t);
            let loss = mmd_loss(&mut tape, sv, tv, 1.0, MmdEstimator::Quadratic);
            last = tape.value(loss).item();
            first.get_or_insert(last);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        let first = first.unwrap();
        assert!(last < 0.5 * first, "MMD did not shrink: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_single_sample_batch() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Matrix::zeros(1, 3));
        let b = tape.input(Matrix::zeros(5, 3));
        mmd_loss(&mut tape, a, b, 1.0, MmdEstimator::Quadratic);
    }
}

/// The median heuristic for the Gaussian bandwidth: the median pairwise
/// distance between rows of the pooled sample (Gretton et al. [15]).
///
/// The paper fixes `sigma`; this extension (DESIGN.md §6) adapts it to
/// the current embedding scale, which matters because embeddings grow
/// during training while a fixed bandwidth slowly leaves the kernel's
/// sensitive range.
///
/// # Panics
/// Panics if fewer than two rows are supplied in total.
pub fn median_heuristic_sigma(source: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(source.cols(), target.cols(), "dims differ");
    let rows: Vec<&[f32]> = (0..source.rows())
        .map(|i| source.row(i))
        .chain((0..target.rows()).map(|i| target.row(i)))
        .collect();
    assert!(rows.len() >= 2, "median heuristic needs at least 2 samples");
    let mut dists = Vec::with_capacity(rows.len() * (rows.len() - 1) / 2);
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            let d2: f32 = rows[i]
                .iter()
                .zip(rows[j])
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            dists.push(d2.sqrt());
        }
    }
    dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let median = dists[dists.len() / 2];
    // Guard against collapsed samples: never return a degenerate bandwidth.
    median.max(1e-3)
}

#[cfg(test)]
mod median_tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use st_tensor::Init;

    #[test]
    fn median_scales_with_the_data() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = Init::Gaussian { std: 1.0 }.sample(20, 4, &mut rng);
        let b = Init::Gaussian { std: 1.0 }.sample(20, 4, &mut rng);
        let s1 = median_heuristic_sigma(&a, &b);
        let s10 = median_heuristic_sigma(&a.scale(10.0), &b.scale(10.0));
        assert!(
            (s10 / s1 - 10.0).abs() < 0.5,
            "sigma should scale linearly: {s1} -> {s10}"
        );
    }

    #[test]
    fn collapsed_samples_get_floor_bandwidth() {
        let a = Matrix::zeros(5, 3);
        let b = Matrix::zeros(5, 3);
        assert_eq!(median_heuristic_sigma(&a, &b), 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_single_row_total() {
        let a = Matrix::zeros(1, 3);
        let b = Matrix::zeros(0, 3);
        median_heuristic_sigma(&a, &b);
    }
}
