//! ST-TransRec: the unified model of Fig. 1b.
//!
//! One [`st_tensor::ParamStore`] holds the user, POI and word embedding
//! tables plus the interaction MLP. Each training step assembles the
//! joint objective of Eq. 3 on a single tape:
//!
//! ```text
//! L = L_I^s + L_Gvw^s + L_I^t + L_Gvw^t + lambda * D(P, Q)
//! ```
//!
//! with the MMD term fed by density-resampled POI batches (Sec. 3.1.4-5)
//! and each ablation variant dropping its corresponding term.

use crate::interaction::InteractionSampler;
use crate::mmd::mmd_loss;
use crate::resample::{CityResampler, MultiCityResampler};
use crate::skipgram::skipgram_loss;
use crate::{ModelConfig, Variant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::{CityId, CrossingCitySplit, Dataset, PoiId, TextualContextGraph, UserId};
use st_eval::Scorer;
use st_tensor::{
    Activation, Adam, Embedding, Gradients, InferCtx, MatrixPool, Mlp, Optimizer, ParamStore, Tape,
};

/// Loss values of one training step (zero for disabled terms).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepLosses {
    /// `L_I^s`: source-side interaction loss.
    pub interaction_source: f32,
    /// `L_I^t`: target-side interaction loss.
    pub interaction_target: f32,
    /// `L_Gvw^s`: source-side context-prediction loss.
    pub context_source: f32,
    /// `L_Gvw^t`: target-side context-prediction loss.
    pub context_target: f32,
    /// `D(P, Q)`: the (unweighted) MMD value.
    pub mmd: f32,
}

impl StepLosses {
    /// The weighted total of Eq. 3.
    pub fn total(&self, lambda: f32) -> f32 {
        self.interaction_source
            + self.interaction_target
            + self.context_source
            + self.context_target
            + lambda * self.mmd
    }
}

/// Per-epoch averaged losses.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch number, starting at 0.
    pub epoch: usize,
    /// Mean step losses.
    pub losses: StepLosses,
    /// Steps taken.
    pub steps: usize,
}

/// The trained model.
pub struct STTransRec {
    config: ModelConfig,
    target_city: CityId,
    store: ParamStore,
    user_emb: Embedding,
    poi_emb: Embedding,
    word_emb: Embedding,
    tower: Mlp,
    source_graph: Option<TextualContextGraph>,
    target_graph: Option<TextualContextGraph>,
    source_sampler: InteractionSampler,
    target_sampler: InteractionSampler,
    source_resampler: Option<MultiCityResampler>,
    target_resampler: Option<CityResampler>,
    optimizer: Adam,
    rng: SmallRng,
    steps_per_epoch: usize,
    history: Vec<EpochStats>,
    /// Buffer pool carried across training steps; in steady state the
    /// per-step tape allocates nothing.
    pool: MatrixPool,
    /// Gradient buffer carried across [`STTransRec::train_step`] calls;
    /// cleared (storage retained) after each apply.
    grads: Gradients,
}

impl STTransRec {
    /// Builds the model over a training split.
    ///
    /// All data-dependent structures — context graphs per side,
    /// interaction samplers per side, Algorithm 1 segmentations and the
    /// density resamplers — are derived from `split.train` only.
    pub fn new(dataset: &Dataset, split: &CrossingCitySplit, config: ModelConfig) -> Self {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let target_city = split.target_city;
        let source_cities: Vec<CityId> = dataset
            .cities()
            .iter()
            .map(|c| c.id)
            .filter(|&c| c != target_city)
            .collect();
        assert!(!source_cities.is_empty(), "need at least one source city");

        // Parameters.
        let mut store = ParamStore::new();
        let dim = config.embedding_dim;
        let user_emb = Embedding::new(&mut store, "user_emb", dataset.num_users(), dim, &mut rng);
        let poi_emb = Embedding::new(&mut store, "poi_emb", dataset.num_pois(), dim, &mut rng);
        let word_emb = Embedding::new(
            &mut store,
            "word_emb",
            dataset.vocab().len().max(1),
            dim,
            &mut rng,
        );
        let tower = Mlp::new(
            &mut store,
            "tower",
            &config.tower_widths(),
            Activation::Relu,
            config.dropout,
            &mut rng,
        );

        // Context graphs per side (Def. 2), when the text loss is active.
        let (source_graph, target_graph) = if config.use_text() {
            let src_pois: Vec<PoiId> = source_cities
                .iter()
                .flat_map(|&c| dataset.pois_in_city(c).iter().copied())
                .collect();
            let tgt_pois = dataset.pois_in_city(target_city).to_vec();
            (
                Some(TextualContextGraph::build(
                    dataset,
                    &src_pois,
                    config.unigram_power,
                )),
                Some(TextualContextGraph::build(
                    dataset,
                    &tgt_pois,
                    config.unigram_power,
                )),
            )
        } else {
            (None, None)
        };

        // Interaction samplers per side.
        let source_sampler = InteractionSampler::new(dataset, &split.train, &source_cities);
        let target_sampler = InteractionSampler::new(dataset, &split.train, &[target_city]);

        // Density resamplers feeding the MMD layer.
        let (source_resampler, target_resampler) = if config.use_mmd() {
            let per_city: Vec<CityResampler> = source_cities
                .iter()
                .map(|&c| {
                    CityResampler::build(
                        dataset,
                        &split.train,
                        c,
                        config.grid_n,
                        config.delta,
                        config.alpha,
                        &mut rng,
                    )
                })
                .collect();
            let tgt = CityResampler::build(
                dataset,
                &split.train,
                target_city,
                config.grid_n,
                config.delta,
                config.alpha,
                &mut rng,
            );
            (
                Some(MultiCityResampler::new(per_city)),
                tgt.is_usable().then_some(tgt),
            )
        } else {
            (None, None)
        };

        let steps_per_epoch = (split.train.len() / config.batch_size).max(1);
        let grads = if config.sparse_gradients {
            Gradients::zeros_like(&store)
        } else {
            Gradients::dense_like(&store)
        };
        let optimizer = Adam::new(config.learning_rate)
            .with_weight_decay(config.weight_decay)
            .with_lazy(config.lazy_optimizer)
            .with_shards(config.optimizer_shards);

        Self {
            config,
            target_city,
            store,
            user_emb,
            poi_emb,
            word_emb,
            tower,
            source_graph,
            target_graph,
            source_sampler,
            target_sampler,
            source_resampler,
            target_resampler,
            grads,
            optimizer,
            rng,
            steps_per_epoch,
            history: Vec::new(),
            pool: MatrixPool::new(),
        }
    }

    /// A fresh gradient buffer matching the configured representation:
    /// row-sparse by default, or the dense oracle when
    /// `sparse_gradients` is off. The parallel trainer uses this so its
    /// per-worker buffers follow the model's configuration.
    pub fn new_grad_buffer(&self) -> Gradients {
        if self.config.sparse_gradients {
            Gradients::zeros_like(&self.store)
        } else {
            Gradients::dense_like(&self.store)
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The held-out city.
    pub fn target_city(&self) -> CityId {
        self.target_city
    }

    /// The parameter store (read access, e.g. for embedding inspection).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Number of optimizer steps per epoch.
    pub fn steps_per_epoch(&self) -> usize {
        self.steps_per_epoch
    }

    /// Per-epoch training history so far.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// The embedding vector of a POI (current parameters).
    pub fn poi_embedding(&self, poi: PoiId) -> &[f32] {
        self.store.get(self.poi_emb.table()).row(poi.idx())
    }

    /// The embedding vector of a user (current parameters).
    pub fn user_embedding(&self, user: UserId) -> &[f32] {
        self.store.get(self.user_emb.table()).row(user.idx())
    }

    /// Computes gradients for one joint step into `grads`, returning the
    /// loss values. Uses the supplied RNG (the parallel trainer gives each
    /// worker its own stream). Does NOT apply the optimizer.
    pub fn accumulate_step(
        &self,
        dataset: &Dataset,
        grads: &mut Gradients,
        rng: &mut SmallRng,
    ) -> StepLosses {
        let mut pool = MatrixPool::new();
        self.accumulate_step_with_pool(dataset, grads, rng, &mut pool)
    }

    /// As [`STTransRec::accumulate_step`], drawing all tape intermediates
    /// from `pool` and returning the (grown) pool through it. Callers that
    /// keep the pool across steps — [`STTransRec::train_step`], the
    /// parallel trainer's workers — reach an allocation-free steady state.
    pub fn accumulate_step_with_pool(
        &self,
        dataset: &Dataset,
        grads: &mut Gradients,
        rng: &mut SmallRng,
        pool: &mut MatrixPool,
    ) -> StepLosses {
        let cfg = &self.config;
        let mut losses = StepLosses::default();
        let mut tape = Tape::with_pool(&self.store, std::mem::take(pool));
        let mut roots: Vec<(st_tensor::Var, f32)> = Vec::with_capacity(5);

        // L_I^s and L_I^t.
        for (sampler, slot) in [
            (&self.source_sampler, 0usize),
            (&self.target_sampler, 1usize),
        ] {
            if sampler.is_empty() {
                continue;
            }
            let batch = sampler.sample_batch(dataset, cfg.batch_size, cfg.negatives, rng);
            let loss = self.interaction_loss(&mut tape, &batch, rng);
            let v = tape.value(loss).item();
            if slot == 0 {
                losses.interaction_source = v;
            } else {
                losses.interaction_target = v;
            }
            roots.push((loss, 1.0));
        }

        // L_Gvw^s and L_Gvw^t.
        if cfg.use_text() {
            for (graph, slot) in [(&self.source_graph, 0usize), (&self.target_graph, 1usize)] {
                let Some(graph) = graph else { continue };
                let batch = graph.sample_batch(cfg.context_batch, cfg.context_negatives, rng);
                let loss = skipgram_loss(
                    &mut tape,
                    self.poi_emb.table(),
                    self.word_emb.table(),
                    graph,
                    &batch,
                );
                let v = tape.value(loss).item();
                if slot == 0 {
                    losses.context_source = v;
                } else {
                    losses.context_target = v;
                }
                roots.push((loss, 1.0));
            }
        }

        // lambda * D(P, Q) over resampled POI embedding batches.
        if cfg.use_mmd() {
            if let (Some(src), Some(tgt)) = (&self.source_resampler, &self.target_resampler) {
                let src_pois: Vec<usize> = src
                    .sample_batch(cfg.mmd_batch, rng)
                    .into_iter()
                    .map(PoiId::idx)
                    .collect();
                let tgt_pois: Vec<usize> = tgt
                    .sample_batch(cfg.mmd_batch, rng)
                    .into_iter()
                    .map(PoiId::idx)
                    .collect();
                let se = tape.gather_param(self.poi_emb.table(), &src_pois);
                let te = tape.gather_param(self.poi_emb.table(), &tgt_pois);
                let loss = mmd_loss(&mut tape, se, te, cfg.mmd_sigma, cfg.mmd_estimator);
                losses.mmd = tape.value(loss).item();
                roots.push((loss, cfg.lambda));
            }
        }

        for (root, weight) in roots {
            tape.backward_scaled(root, weight, grads);
        }
        *pool = tape.into_pool();
        losses
    }

    /// One optimizer step over the joint objective.
    pub fn train_step(&mut self, dataset: &Dataset) -> StepLosses {
        // Borrow juggling: accumulate_step needs &self while rng, the pool
        // and the gradient buffer need &mut, so all are moved out for the
        // call. The buffer is cleared (storage retained) and put back, so
        // steady-state steps allocate nothing.
        let mut grads = std::mem::take(&mut self.grads);
        let mut rng = SmallRng::seed_from_u64(self.rng.gen());
        let mut pool = std::mem::take(&mut self.pool);
        let losses = self.accumulate_step_with_pool(dataset, &mut grads, &mut rng, &mut pool);
        self.pool = pool;
        self.apply(&grads);
        grads.clear();
        self.grads = grads;
        losses
    }

    /// One incremental optimizer step over an externally assembled
    /// interaction batch — the micro-batch path of the `st-online`
    /// pipeline, which trains on streamed check-ins instead of sampling
    /// from a static split.
    ///
    /// Only the interaction-tower objective runs (`L_I` of Eq. 13): the
    /// text and MMD terms need the full offline graph/resampler context
    /// and are already baked into the warm-started parameters. With
    /// `sparse_gradients` + `lazy_optimizer` configured (the defaults)
    /// the step touches exactly the user/POI embedding rows in `batch`
    /// plus the tower — per-event cost scales with the micro-batch, not
    /// the tables. Returns the batch BCE loss.
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn train_on_interactions(&mut self, batch: &crate::interaction::InteractionBatch) -> f32 {
        assert!(!batch.is_empty(), "empty incremental batch");
        let mut grads = std::mem::take(&mut self.grads);
        let mut rng = SmallRng::seed_from_u64(self.rng.gen());
        let pool = std::mem::take(&mut self.pool);
        let mut tape = Tape::with_pool(&self.store, pool);
        let loss = self.interaction_loss(&mut tape, batch, &mut rng);
        let loss_value = tape.value(loss).item();
        tape.backward_scaled(loss, 1.0, &mut grads);
        self.pool = tape.into_pool();
        self.apply(&grads);
        grads.clear();
        self.grads = grads;
        loss_value
    }

    /// Applies externally computed gradients (used by the parallel trainer).
    pub fn apply(&mut self, grads: &Gradients) {
        self.optimizer.step(&mut self.store, grads);
        debug_assert!(!self.store.has_non_finite(), "parameters diverged");
    }

    /// One epoch: [`STTransRec::steps_per_epoch`] joint steps.
    pub fn train_epoch(&mut self, dataset: &Dataset) -> EpochStats {
        let mut sum = StepLosses::default();
        let steps = self.steps_per_epoch;
        for _ in 0..steps {
            let l = self.train_step(dataset);
            sum.interaction_source += l.interaction_source;
            sum.interaction_target += l.interaction_target;
            sum.context_source += l.context_source;
            sum.context_target += l.context_target;
            sum.mmd += l.mmd;
        }
        let n = steps as f32;
        let stats = EpochStats {
            epoch: self.history.len(),
            losses: StepLosses {
                interaction_source: sum.interaction_source / n,
                interaction_target: sum.interaction_target / n,
                context_source: sum.context_source / n,
                context_target: sum.context_target / n,
                mmd: sum.mmd / n,
            },
            steps,
        };
        self.history.push(stats.clone());
        stats
    }

    /// Trains for `config.epochs` epochs, returning the history.
    pub fn fit(&mut self, dataset: &Dataset) -> Vec<EpochStats> {
        for _ in 0..self.config.epochs {
            self.train_epoch(dataset);
        }
        self.history.clone()
    }

    /// Builds the interaction tower loss for a training batch on `tape`
    /// (dropout active when configured; inference goes through
    /// [`STTransRec::predict`], which never touches a tape).
    fn interaction_loss(
        &self,
        tape: &mut Tape<'_>,
        batch: &crate::interaction::InteractionBatch,
        rng: &mut SmallRng,
    ) -> st_tensor::Var {
        let users = tape.gather_param(self.user_emb.table(), &batch.users);
        let pois = tape.gather_param(self.poi_emb.table(), &batch.pois);
        let mut x = tape.concat_cols(users, pois);
        // Paper: dropout on the embedding layer and each hidden layer.
        if self.config.dropout > 0.0 {
            x = tape.dropout(x, self.config.dropout, rng);
        }
        let logits = self.tower.forward_train(tape, x, rng);
        let n = batch.labels.len();
        tape.bce_with_logits(
            logits,
            st_tensor::Matrix::from_vec(n, 1, batch.labels.clone()),
        )
    }

    /// Predicted interaction probabilities for `(user, poi)` pairs given
    /// as parallel index slices — Eq. 12's `sigma(W^T e_L)` at inference.
    ///
    /// Tape-free: the pairs are scored through [`InferCtx`] over the live
    /// parameters — no graph nodes, no backward closures, no RNG. Callers
    /// scoring repeatedly should hold an [`InferCtx`] and use
    /// [`STTransRec::predict_with`] to reach the zero-allocation steady
    /// state.
    pub fn predict(&self, users: &[usize], pois: &[usize]) -> Vec<f32> {
        let mut ctx = InferCtx::new();
        self.predict_with(&mut ctx, users, pois)
    }

    /// As [`STTransRec::predict`], reusing the caller's scratch buffers.
    pub fn predict_with(&self, ctx: &mut InferCtx, users: &[usize], pois: &[usize]) -> Vec<f32> {
        assert_eq!(users.len(), pois.len(), "pair slices must be parallel");
        ctx.gather_concat2(
            self.store.get(self.user_emb.table()),
            users,
            self.store.get(self.poi_emb.table()),
            pois,
        );
        self.tower.forward_infer(&self.store, ctx);
        ctx.sigmoid();
        ctx.value().as_slice().to_vec()
    }

    /// [`STTransRec::predict`] evaluated on the autodiff tape — the
    /// differential-testing and benchmark oracle the tape-free path is
    /// held bit-identical to. Not used on any serving path.
    pub fn predict_tape(&self, users: &[usize], pois: &[usize]) -> Vec<f32> {
        assert_eq!(users.len(), pois.len(), "pair slices must be parallel");
        let mut tape = Tape::new(&self.store);
        let u = tape.gather_param(self.user_emb.table(), users);
        let p = tape.gather_param(self.poi_emb.table(), pois);
        let x = tape.concat_cols(u, p);
        let logits = self.tower.forward_inference(&mut tape, x);
        let probs = tape.sigmoid(logits);
        tape.value(probs).as_slice().to_vec()
    }

    /// Captures a frozen [`crate::ModelSnapshot`] of the current
    /// parameters for tape-free serving.
    pub fn snapshot(&self) -> crate::ModelSnapshot {
        crate::ModelSnapshot::capture(self)
    }

    pub(crate) fn user_emb(&self) -> &Embedding {
        &self.user_emb
    }

    pub(crate) fn poi_emb(&self) -> &Embedding {
        &self.poi_emb
    }

    pub(crate) fn tower(&self) -> &Mlp {
        &self.tower
    }

    /// Convenience accessor for the ablation variant in use.
    pub fn variant(&self) -> Variant {
        self.config.variant
    }

    /// Saves all trained parameters (embedding tables + tower weights) to
    /// a writer in the `st-tensor` checkpoint format.
    pub fn save<W: std::io::Write>(&self, out: W) -> std::io::Result<()> {
        st_tensor::save_params(&self.store, out)
    }

    /// Restores parameters from a checkpoint written by [`STTransRec::save`].
    ///
    /// The checkpoint must come from a model with the same architecture
    /// (same dataset sizes and config); mismatches are rejected. Every
    /// failure mode — truncated streams, mangled headers, shape
    /// mismatches — surfaces as a clean [`std::io::Error`] and leaves the
    /// current parameters untouched, so a bad hot-reload on a serving
    /// path is rejected while the old model keeps answering.
    pub fn restore<R: std::io::Read>(&mut self, input: R) -> std::io::Result<()> {
        let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let loaded = st_tensor::load_params(input).map_err(std::io::Error::from)?;
        if loaded.len() != self.store.len() {
            return Err(corrupt(format!(
                "parameter count mismatch: checkpoint {} vs model {}",
                loaded.len(),
                self.store.len()
            )));
        }
        for ((_, name, value), (_, l_name, l_value)) in self.store.iter().zip(loaded.iter()) {
            if name != l_name || value.shape() != l_value.shape() {
                return Err(corrupt(format!(
                    "parameter '{name}' {:?} does not match checkpoint '{l_name}' {:?}",
                    value.shape(),
                    l_value.shape()
                )));
            }
        }
        // Shapes verified; copy values in.
        let values: Vec<st_tensor::Matrix> = loaded.iter().map(|(_, _, v)| v.clone()).collect();
        let ids: Vec<_> = self.store.ids().collect();
        for (id, value) in ids.into_iter().zip(values) {
            *self.store.get_mut(id) = value;
        }
        Ok(())
    }
}

impl Scorer for STTransRec {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        let users = vec![user.idx(); pois.len()];
        let poi_rows: Vec<usize> = pois.iter().map(|p| p.idx()).collect();
        self.predict(&users, &poi_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};

    fn setup() -> (Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn builds_with_all_components() {
        let (d, split) = setup();
        let m = STTransRec::new(&d, &split, ModelConfig::test_small());
        assert!(m.source_graph.is_some());
        assert!(m.target_graph.is_some());
        assert!(m.source_resampler.is_some());
        assert!(m.steps_per_epoch() >= 1);
        assert_eq!(m.poi_embedding(PoiId(0)).len(), 16);
        assert_eq!(m.user_embedding(UserId(0)).len(), 16);
    }

    #[test]
    fn variants_disable_their_components() {
        let (d, split) = setup();
        let m1 = STTransRec::new(
            &d,
            &split,
            ModelConfig::test_small().with_variant(Variant::NoMmd),
        );
        assert!(m1.source_resampler.is_none());
        assert!(m1.source_graph.is_some());

        let m2 = STTransRec::new(
            &d,
            &split,
            ModelConfig::test_small().with_variant(Variant::NoText),
        );
        assert!(m2.source_graph.is_none());
        assert!(m2.source_resampler.is_some());

        let m3 = STTransRec::new(
            &d,
            &split,
            ModelConfig::test_small().with_variant(Variant::NoResample),
        );
        assert_eq!(m3.config().alpha, 0.0);
    }

    #[test]
    fn single_step_produces_all_loss_terms() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let l = m.train_step(&d);
        assert!(l.interaction_source > 0.0 && l.interaction_source.is_finite());
        assert!(l.interaction_target > 0.0);
        assert!(l.context_source > 0.0);
        assert!(l.context_target > 0.0);
        assert!(l.mmd.is_finite());
        assert!(l.total(1.0).is_finite());
    }

    #[test]
    fn variant_steps_zero_their_terms() {
        let (d, split) = setup();
        let mut m = STTransRec::new(
            &d,
            &split,
            ModelConfig::test_small().with_variant(Variant::NoText),
        );
        let l = m.train_step(&d);
        assert_eq!(l.context_source, 0.0);
        assert_eq!(l.context_target, 0.0);
        assert!(l.interaction_source > 0.0);

        let mut m = STTransRec::new(
            &d,
            &split,
            ModelConfig::test_small().with_variant(Variant::NoMmd),
        );
        let l = m.train_step(&d);
        assert_eq!(l.mmd, 0.0);
    }

    #[test]
    fn training_reduces_interaction_loss() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let history = m.fit(&d);
        assert_eq!(history.len(), 3);
        let first = history.first().unwrap().losses;
        let last = history.last().unwrap().losses;
        let f = first.interaction_source + first.interaction_target;
        let l = last.interaction_source + last.interaction_target;
        assert!(l < f, "interaction loss did not drop: {f} -> {l}");
        assert!(!m.params().has_non_finite());
    }

    #[test]
    fn training_reduces_mmd() {
        let (d, split) = setup();
        let mut cfg = ModelConfig::test_small();
        cfg.lambda = 2.0;
        cfg.epochs = 4;
        let mut m = STTransRec::new(&d, &split, cfg);
        let history = m.fit(&d);
        let first = history.first().unwrap().losses.mmd;
        let last = history.last().unwrap().losses.mmd;
        assert!(
            last < first + 0.02,
            "MMD should not grow under the transfer loss: {first} -> {last}"
        );
    }

    /// The incremental online step: repeated steps on one fixed batch
    /// must descend, leave untouched embedding rows bit-identical (the
    /// row-sparse + lazy-Adam contract), and stay deterministic.
    #[test]
    fn incremental_interaction_steps_descend_and_stay_sparse() {
        use crate::interaction::InteractionBatch;
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let batch = InteractionBatch {
            users: vec![0, 0, 1, 1, 2, 2],
            pois: vec![0, 1, 2, 3, 4, 5],
            labels: vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
        };
        let untouched_user = m.user_embedding(UserId(7)).to_vec();
        let first = m.train_on_interactions(&batch);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_on_interactions(&batch);
        }
        assert!(first.is_finite() && first > 0.0);
        assert!(
            last < first,
            "incremental loss did not descend: {first} -> {last}"
        );
        assert_eq!(
            m.user_embedding(UserId(7)),
            untouched_user.as_slice(),
            "lazy sparse step touched an un-batched user row"
        );
        assert!(!m.params().has_non_finite());

        // Determinism: a same-seeded model walked through the same batch
        // sequence lands on identical parameters.
        let mut twin = STTransRec::new(&d, &split, ModelConfig::test_small());
        for _ in 0..31 {
            twin.train_on_interactions(&batch);
        }
        let pois = d.pois_in_city(split.target_city);
        assert_eq!(
            m.score_batch(UserId(0), pois),
            twin.score_batch(UserId(0), pois)
        );
    }

    #[test]
    fn scorer_outputs_probabilities() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let pois = d.pois_in_city(split.target_city);
        let scores = m.score_batch(UserId(0), pois);
        assert_eq!(scores.len(), pois.len());
        assert!(scores
            .iter()
            .all(|s| (0.0..=1.0).contains(s) && s.is_finite()));
    }

    #[test]
    fn tape_free_predict_matches_tape_oracle_bitwise() {
        let (d, split) = setup();
        for variant in [Variant::Full, Variant::NoMmd, Variant::NoText] {
            let mut m =
                STTransRec::new(&d, &split, ModelConfig::test_small().with_variant(variant));
            m.train_epoch(&d);
            let pois: Vec<usize> = d
                .pois_in_city(split.target_city)
                .iter()
                .map(|p| p.idx())
                .collect();
            let users = vec![2usize; pois.len()];
            assert_eq!(
                m.predict(&users, &pois),
                m.predict_tape(&users, &pois),
                "executors diverged for {variant:?}"
            );
        }
    }

    #[test]
    fn inference_is_deterministic() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let pois = d.pois_in_city(split.target_city);
        let a = m.score_batch(UserId(3), pois);
        let b = m.score_batch(UserId(3), pois);
        assert_eq!(a, b);
    }

    #[test]
    fn save_restore_roundtrips_scores() {
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let pois = d.pois_in_city(split.target_city);
        let before = m.score_batch(UserId(1), pois);

        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        // Wreck the weights, then restore.
        let mut wrecked = STTransRec::new(&d, &split, ModelConfig::test_small());
        wrecked.restore(buf.as_slice()).unwrap();
        assert_eq!(wrecked.score_batch(UserId(1), pois), before);
    }

    #[test]
    fn restore_rejects_mismatched_architecture() {
        let (d, split) = setup();
        let m = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let mut other =
            STTransRec::new(&d, &split, ModelConfig::test_small().with_embedding_dim(8));
        assert!(other.restore(buf.as_slice()).is_err());
    }

    #[test]
    fn seeded_models_reproduce_exactly() {
        let (d, split) = setup();
        let mut a = STTransRec::new(&d, &split, ModelConfig::test_small());
        let mut b = STTransRec::new(&d, &split, ModelConfig::test_small());
        let la = a.train_step(&d);
        let lb = b.train_step(&d);
        assert_eq!(la, lb);
    }

    /// Convergence parity between the lazy sparse training path and the
    /// dense oracle (same seeds, same batches): lazy Adam skips the dense
    /// path's momentum-tail updates on untouched embedding rows, so the
    /// paths are not bit-identical — but they must descend together.
    #[test]
    fn lazy_sparse_training_converges_like_dense_oracle() {
        let (d, split) = setup();
        let run = |sparse: bool| -> (f32, f32) {
            let mut cfg = ModelConfig::test_small();
            cfg.sparse_gradients = sparse;
            cfg.lazy_optimizer = sparse;
            let mut m = STTransRec::new(&d, &split, cfg);
            // The very first step's losses are computed before any update,
            // so the two paths must agree exactly there.
            let step0 = m.train_step(&d);
            let mut last = m.train_epoch(&d).losses;
            for _ in 0..2 {
                last = m.train_epoch(&d).losses;
            }
            assert!(!m.params().has_non_finite());
            (
                step0.interaction_source + step0.interaction_target,
                last.interaction_source + last.interaction_target,
            )
        };
        let (lazy_first, lazy_last) = run(true);
        let (dense_first, dense_last) = run(false);
        assert!(lazy_last < lazy_first, "lazy path did not descend");
        assert!(dense_last < dense_first, "dense path did not descend");
        // Same start (identical seeds/batches) and comparable end.
        assert_eq!(lazy_first, dense_first, "paths start apart");
        let rel = (lazy_last - dense_last).abs() / dense_last.max(1e-6);
        assert!(
            rel < 0.15,
            "final losses diverged: lazy {lazy_last} vs dense {dense_last}"
        );
    }
}
