//! Skipgram context prediction on the textual context graph (Eq. 4).
//!
//! For each positive `(poi, word)` edge plus `K` sampled negative words,
//! the logit is the dot product of the POI and word embeddings; the loss
//! is binary cross-entropy (the negative-sampling approximation of
//! `log P(w|v)` in Eq. 4). POIs sharing context words are thereby pulled
//! toward similar embeddings.

use st_data::{ContextSample, PoiId, TextualContextGraph};
use st_tensor::{Matrix, ParamId, Tape, Var};

/// Builds the skipgram loss for a batch of context samples.
///
/// `poi_table` and `word_table` are embedding-table parameters;
/// `graph` maps each sample's local `poi_index` back to a dense
/// [`PoiId`]. Returns a `1 x 1` mean loss.
///
/// # Panics
/// Panics on an empty batch.
pub fn skipgram_loss(
    tape: &mut Tape<'_>,
    poi_table: ParamId,
    word_table: ParamId,
    graph: &TextualContextGraph,
    batch: &[ContextSample],
) -> Var {
    assert!(!batch.is_empty(), "empty skipgram batch");
    // One row per (poi, word) pair: the positive then its negatives.
    let mut poi_rows: Vec<usize> = Vec::with_capacity(batch.len() * 4);
    let mut word_rows: Vec<usize> = Vec::with_capacity(batch.len() * 4);
    let mut targets: Vec<f32> = Vec::with_capacity(batch.len() * 4);
    for s in batch {
        let poi: PoiId = graph.pois()[s.poi_index];
        poi_rows.push(poi.idx());
        word_rows.push(s.positive.idx());
        targets.push(1.0);
        for w in &s.negatives {
            poi_rows.push(poi.idx());
            word_rows.push(w.idx());
            targets.push(0.0);
        }
    }
    let pois = tape.gather_param(poi_table, &poi_rows);
    let words = tape.gather_param(word_table, &word_rows);
    let logits = tape.row_dot(pois, words);
    let n = targets.len();
    tape.bce_with_logits(logits, Matrix::from_vec(n, 1, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use st_data::synth::{generate, SynthConfig};
    use st_data::{PoiId, TextualContextGraph};
    use st_tensor::{Adam, Gradients, Init, Optimizer, ParamStore};

    fn setup() -> (st_data::Dataset, TextualContextGraph) {
        let (d, _) = generate(&SynthConfig::tiny());
        let pois: Vec<PoiId> = d.pois().iter().map(|p| p.id).collect();
        let g = TextualContextGraph::build(&d, &pois, 0.75);
        (d, g)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (d, g) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let pt = store.register(
            "poi",
            d.num_pois(),
            8,
            Init::Gaussian { std: 0.01 },
            &mut rng,
        );
        let wt = store.register(
            "word",
            d.vocab().len(),
            8,
            Init::Gaussian { std: 0.01 },
            &mut rng,
        );
        let batch = g.sample_batch(64, 3, &mut rng);
        let mut tape = Tape::new(&store);
        let loss = skipgram_loss(&mut tape, pt, wt, &g, &batch);
        let v = tape.value(loss).item();
        assert!(v.is_finite() && v > 0.0);
        // Near-zero embeddings -> logits ~ 0 -> loss ~ ln 2.
        assert!(
            (v - std::f32::consts::LN_2).abs() < 0.05,
            "initial loss {v}"
        );
    }

    #[test]
    fn training_reduces_loss_and_groups_similar_pois() {
        let (d, g) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dim = 16;
        let pt = store.register(
            "poi",
            d.num_pois(),
            dim,
            Init::Gaussian { std: 0.05 },
            &mut rng,
        );
        let wt = store.register(
            "word",
            d.vocab().len(),
            dim,
            Init::Gaussian { std: 0.05 },
            &mut rng,
        );
        let mut opt = Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let batch = g.sample_batch(128, 4, &mut rng);
            let mut tape = Tape::new(&store);
            let loss = skipgram_loss(&mut tape, pt, wt, &g, &batch);
            last = tape.value(loss).item();
            first.get_or_insert(last);
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        assert!(last < 0.7 * first.unwrap(), "{:?} -> {last}", first);

        // POIs sharing words must be closer (cosine) than unrelated POIs,
        // averaged over many sampled pairs.
        let table = store.get(pt);
        let cosine = |a: usize, b: usize| -> f32 {
            let (ra, rb) = (table.row(a), table.row(b));
            let dot: f32 = ra.iter().zip(rb).map(|(&x, &y)| x * y).sum();
            let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let share_words = |a: usize, b: usize| -> bool {
            d.poi(PoiId(a as u32))
                .words
                .iter()
                .any(|w| d.poi(PoiId(b as u32)).words.contains(w))
        };
        let (mut sim_shared, mut n_shared, mut sim_other, mut n_other) = (0.0, 0, 0.0, 0);
        for a in 0..d.num_pois() {
            for b in (a + 1)..d.num_pois() {
                if share_words(a, b) {
                    sim_shared += cosine(a, b);
                    n_shared += 1;
                } else {
                    sim_other += cosine(a, b);
                    n_other += 1;
                }
            }
        }
        let avg_shared = sim_shared / n_shared.max(1) as f32;
        let avg_other = sim_other / n_other.max(1) as f32;
        assert!(
            avg_shared > avg_other + 0.05,
            "shared-word POIs not closer: {avg_shared} vs {avg_other}"
        );
    }

    #[test]
    #[should_panic(expected = "empty skipgram batch")]
    fn rejects_empty_batch() {
        let (d, g) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let pt = store.register("poi", d.num_pois(), 4, Init::Zeros, &mut rng);
        let wt = store.register("word", d.vocab().len(), 4, Init::Zeros, &mut rng);
        let mut tape = Tape::new(&store);
        skipgram_loss(&mut tape, pt, wt, &g, &[]);
    }
}
