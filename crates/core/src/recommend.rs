//! Top-k recommendation and the explainability views of Table 3.
//!
//! [`recommend_top_k`] works over any [`Scorer`], so the same machinery
//! serves ST-TransRec, its ablations and every baseline. The case-study
//! helpers surface the word-level evidence the paper prints: a user's
//! top profile words from their source-city check-ins, and each
//! recommended POI's top descriptive words.

use st_data::{Checkin, CityId, Dataset, PoiId, UserId, WordId};
use st_eval::{score_sharded, Scorer};
use std::collections::{HashMap, HashSet};

/// One ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended POI.
    pub poi: PoiId,
    /// Its predicted score (higher = better).
    pub score: f32,
}

/// Scores every POI of `city` for `user` (excluding `exclude`) and
/// returns the top `k` by score, ties broken by POI id for determinism.
///
/// The full catalog is scored as one batch — a single forward pass
/// through the interaction tower — sharded across all available cores
/// via [`score_sharded`]. Exclusion is a hash-set probe (catalogs are
/// thousands of POIs; a linear scan per candidate is quadratic), and the
/// sort uses [`f32::total_cmp`], so a scorer emitting NaN degrades to a
/// deterministic order instead of panicking mid-ranking.
///
/// `k == 0` yields an empty ranking: this function sits on the serving
/// path, where request input must never panic the process.
pub fn recommend_top_k(
    scorer: &dyn Scorer,
    dataset: &Dataset,
    user: UserId,
    city: CityId,
    k: usize,
    exclude: &[PoiId],
) -> Vec<Recommendation> {
    if k == 0 {
        return Vec::new();
    }
    let excluded: HashSet<PoiId> = exclude.iter().copied().collect();
    let candidates: Vec<PoiId> = dataset
        .pois_in_city(city)
        .iter()
        .copied()
        .filter(|p| !excluded.contains(p))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scores = score_sharded(scorer, user, &candidates, threads);
    let mut ranked: Vec<Recommendation> = candidates
        .into_iter()
        .zip(scores)
        .map(|(poi, score)| Recommendation { poi, score })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.poi.cmp(&b.poi)));
    ranked.truncate(k);
    ranked
}

/// The user's top-n profile words: word frequencies aggregated over the
/// POIs of their training check-ins (Table 3's "Training Data" column).
pub fn user_profile_words(
    dataset: &Dataset,
    train: &[Checkin],
    user: UserId,
    n: usize,
) -> Vec<String> {
    let mut counts: HashMap<WordId, usize> = HashMap::new();
    for c in train.iter().filter(|c| c.user == user) {
        for &w in &dataset.poi(c.poi).words {
            *counts.entry(w).or_default() += 1;
        }
    }
    let mut ranked: Vec<(WordId, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(n)
        .map(|(w, _)| dataset.vocab().word(w).to_owned())
        .collect()
}

/// A POI's first `n` descriptive words (Table 3's "Textual Descriptions").
pub fn poi_top_words(dataset: &Dataset, poi: PoiId, n: usize) -> Vec<String> {
    dataset
        .poi(poi)
        .words
        .iter()
        .take(n)
        .map(|&w| dataset.vocab().word(w).to_owned())
        .collect()
}

/// Everything Table 3 prints for one user under one model.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The user studied.
    pub user: UserId,
    /// Top profile words from source-city training check-ins.
    pub profile_words: Vec<String>,
    /// Top-k recommendations with name, words, and ground-truth marks.
    pub entries: Vec<CaseStudyEntry>,
}

/// One row of the case study.
#[derive(Debug, Clone)]
pub struct CaseStudyEntry {
    /// The recommended POI.
    pub poi: PoiId,
    /// Its display name.
    pub name: String,
    /// Its top descriptive words.
    pub words: Vec<String>,
    /// Whether the POI is in the user's held-out ground truth.
    pub is_ground_truth: bool,
}

/// Builds the case study for `user` under `scorer`.
#[allow(clippy::too_many_arguments)] // mirrors Table 3's column structure
pub fn case_study(
    scorer: &dyn Scorer,
    dataset: &Dataset,
    train: &[Checkin],
    user: UserId,
    target: CityId,
    ground_truth: &[PoiId],
    k: usize,
    words_per_poi: usize,
) -> CaseStudy {
    let recs = recommend_top_k(scorer, dataset, user, target, k, &[]);
    let entries = recs
        .into_iter()
        .map(|r| CaseStudyEntry {
            poi: r.poi,
            name: dataset.poi(r.poi).name.clone(),
            words: poi_top_words(dataset, r.poi, words_per_poi),
            is_ground_truth: ground_truth.contains(&r.poi),
        })
        .collect();
    CaseStudy {
        user,
        profile_words: user_profile_words(dataset, train, user, 10),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::synth::{generate, SynthConfig};
    use st_data::CrossingCitySplit;

    /// Scorer preferring low POI ids.
    struct ByIdDesc;
    impl Scorer for ByIdDesc {
        fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
            pois.iter().map(|p| -(p.0 as f32)).collect()
        }
    }

    fn setup() -> (Dataset, CrossingCitySplit) {
        let cfg = SynthConfig::tiny();
        let (d, _) = generate(&cfg);
        let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
        (d, split)
    }

    #[test]
    fn top_k_is_sorted_and_excludes() {
        let (d, split) = setup();
        let city = split.target_city;
        let first_poi = d.pois_in_city(city)[0];
        let recs = recommend_top_k(&ByIdDesc, &d, UserId(0), city, 5, &[first_poi]);
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.poi != first_poi));
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // All recommendations live in the target city.
        assert!(recs.iter().all(|r| d.poi(r.poi).city == city));
    }

    #[test]
    fn k_zero_returns_empty_instead_of_panicking() {
        let (d, split) = setup();
        let recs = recommend_top_k(&ByIdDesc, &d, UserId(0), split.target_city, 0, &[]);
        assert!(recs.is_empty());
    }

    #[test]
    fn nan_scores_degrade_to_deterministic_order_instead_of_panicking() {
        struct NanScorer;
        impl Scorer for NanScorer {
            fn score_batch(&self, _user: UserId, pois: &[PoiId]) -> Vec<f32> {
                pois.iter()
                    .map(|p| if p.0 % 3 == 0 { f32::NAN } else { p.0 as f32 })
                    .collect()
            }
        }
        let (d, split) = setup();
        let a = recommend_top_k(&NanScorer, &d, UserId(0), split.target_city, 5, &[]);
        let b = recommend_top_k(&NanScorer, &d, UserId(0), split.target_city, 5, &[]);
        // NaN != NaN, so compare ids and score bit patterns.
        let key = |r: &[Recommendation]| -> Vec<(PoiId, u32)> {
            r.iter().map(|x| (x.poi, x.score.to_bits())).collect()
        };
        assert_eq!(key(&a), key(&b), "NaN ordering must be deterministic");
        assert_eq!(a.len(), 5);
        // total_cmp ranks NaN above every finite value, so NaN-scored POIs
        // surface first — visibly wrong output rather than a crash.
        assert!(a[0].score.is_nan());
    }

    /// Wraps a scorer so every POI is scored through its own single-item
    /// batch — the slow per-POI path the batched ranking must match.
    struct PerPoi<S>(S);
    impl<S: Scorer> Scorer for PerPoi<S> {
        fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
            pois.iter().map(|&p| self.0.score(user, p)).collect()
        }
    }

    #[test]
    fn batched_ranking_is_bit_identical_to_per_poi_scoring() {
        use crate::{ModelConfig, STTransRec};
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let city = split.target_city;
        let k = d.pois_in_city(city).len(); // full catalog, no truncation slack
        for user in split.test_users.iter().take(3) {
            let batched = recommend_top_k(&m, &d, *user, city, k, &[]);
            let per_poi = recommend_top_k(&PerPoi(&m), &d, *user, city, k, &[]);
            assert_eq!(batched, per_poi, "user {user:?}: rankings diverge");
        }
    }

    #[test]
    fn sharded_scoring_matches_single_batch() {
        use crate::{ModelConfig, STTransRec};
        let (d, split) = setup();
        let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
        m.train_epoch(&d);
        let user = split.test_users[0];
        let pois = d.pois_in_city(split.target_city);
        let single = m.score_batch(user, pois);
        for threads in [2, 3, 8] {
            let sharded = st_eval::score_sharded(&m, user, pois, threads);
            assert_eq!(single, sharded, "{threads} threads");
        }
    }

    #[test]
    fn profile_words_reflect_training_checkins() {
        let (d, split) = setup();
        let user = split.test_users[0];
        let words = user_profile_words(&d, &split.train, user, 10);
        assert!(!words.is_empty());
        // Every profile word must come from a POI the user visited.
        let visited_words: Vec<String> = split
            .train
            .iter()
            .filter(|c| c.user == user)
            .flat_map(|c| d.poi(c.poi).words.iter())
            .map(|&w| d.vocab().word(w).to_owned())
            .collect();
        for w in &words {
            assert!(visited_words.contains(w), "{w} not in visited words");
        }
    }

    #[test]
    fn case_study_marks_ground_truth() {
        let (d, split) = setup();
        let user = split.test_users[0];
        let truth = split.ground_truth_for(0);
        struct Oracle<'a>(&'a [PoiId]);
        impl Scorer for Oracle<'_> {
            fn score_batch(&self, _u: UserId, pois: &[PoiId]) -> Vec<f32> {
                pois.iter()
                    .map(|p| if self.0.contains(p) { 1.0 } else { 0.0 })
                    .collect()
            }
        }
        let cs = case_study(
            &Oracle(truth),
            &d,
            &split.train,
            user,
            split.target_city,
            truth,
            5,
            5,
        );
        assert_eq!(cs.entries.len(), 5);
        let marked = cs.entries.iter().filter(|e| e.is_ground_truth).count();
        assert_eq!(marked, truth.len().min(5), "oracle surfaces all truth");
        assert!(cs.entries.iter().all(|e| !e.name.is_empty()));
    }
}
