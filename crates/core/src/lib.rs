//! # st-transrec-core
//!
//! The ST-TransRec model (Li & Gong, TKDE'22 / ICDE'23): a deep neural
//! network for crossing-city POI recommendation combining
//!
//! - skipgram context prediction over the textual context graph
//!   ([`skipgram_loss`], Eq. 4),
//! - density-based spatial resampling over uniformly accessible regions
//!   ([`CityResampler`], Sec. 3.1.4, Eq. 6-9),
//! - an MMD transfer layer aligning source- and target-city POI embedding
//!   distributions ([`mmd_loss`], Eq. 10), and
//! - an NCF-style interaction tower ([`STTransRec`], Eq. 11-13),
//!
//! jointly trained on the Eq. 3 objective, with the data-parallel trainer
//! of Table 2 and the ablation variants of Sec. 4.2.2.
//!
//! ```no_run
//! use st_data::{synth, CityId, CrossingCitySplit};
//! use st_transrec_core::{ModelConfig, STTransRec};
//! use st_eval::{evaluate, EvalConfig};
//!
//! let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
//! let split = CrossingCitySplit::build(&dataset, CityId(1));
//! let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
//! model.fit(&dataset);
//! let report = evaluate(&model, &dataset, &split, &EvalConfig::default());
//! println!("{report}");
//! ```

#![warn(missing_docs)]

mod config;
mod interaction;
mod mmd;
mod model;
mod recommend;
mod resample;
mod retrieval;
mod skipgram;
mod snapshot;
mod trainer;

pub use config::{MmdEstimator, ModelConfig, Variant};
pub use interaction::{InteractionBatch, InteractionSampler};
pub use mmd::{median_heuristic_sigma, mmd_loss, mmd_loss_reference, mmd_value};
pub use model::{EpochStats, STTransRec, StepLosses};
pub use recommend::{
    case_study, poi_top_words, recommend_top_k, user_profile_words, CaseStudy, CaseStudyEntry,
    Recommendation,
};
pub use resample::{CityResampler, MultiCityResampler};
pub use retrieval::{
    recommend_top_k_retrieved, retrieval_recall_at_k, Candidates, RetrievalConfig, RetrievalIndex,
    RetrievalOutcome,
};
pub use skipgram::skipgram_loss;
pub use snapshot::{ModelSnapshot, PredictError};
pub use trainer::{ParallelTrainer, TimedEpoch};

// Re-exported so downstream consumers (st-serve's batcher) can hold the
// tape-free executor's scratch state without a direct st-tensor
// dependency.
pub use st_tensor::InferCtx;
