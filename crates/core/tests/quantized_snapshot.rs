//! Differential gates for quantized and memory-mapped snapshots.
//!
//! The v2 snapshot container may store embedding tables as f16 or int8;
//! serving then gathers straight from quantized rows. These tests police
//! the two promises that make that safe to ship:
//!
//! 1. **Ranking fidelity** — top-10 recommendations from f16/int8
//!    snapshots overlap the f32 oracle's top-10 at >= 0.99 on a trained
//!    fixture (the acceptance gate of the quantized-snapshot work).
//! 2. **Path equivalence** — a snapshot reconstructed from a v2
//!    checkpoint ([`ModelSnapshot::from_mapped`]) scores bit-identically
//!    to one quantized in memory from the same parameters, and the f32
//!    v2 round-trip is bit-identical to live capture. Quantization
//!    happens in exactly one place, so there is nothing to drift.

use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset, PoiId};
use st_eval::Scorer;
use st_tensor::checkpoint::MappedParams;
use st_tensor::StorageEncoding;
use st_transrec_core::{
    recommend_top_k, retrieval_recall_at_k, ModelConfig, ModelSnapshot, RetrievalConfig,
    RetrievalIndex, STTransRec,
};
use std::collections::HashSet;

fn trained() -> (Dataset, CrossingCitySplit, STTransRec) {
    let cfg = SynthConfig::tiny();
    let (dataset, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&dataset, CityId(cfg.target_city as u16));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    for _ in 0..3 {
        model.train_epoch(&dataset);
    }
    (dataset, split, model)
}

fn top10(
    snap: &ModelSnapshot,
    dataset: &Dataset,
    split: &CrossingCitySplit,
    user: st_data::UserId,
) -> HashSet<PoiId> {
    recommend_top_k(snap, dataset, user, split.target_city, 10, &[])
        .into_iter()
        .map(|r| r.poi)
        .collect()
}

/// The acceptance gate: mean top-10 overlap of each lossy encoding
/// against the f32 oracle across every test user must reach 0.99.
#[test]
fn quantized_topk_overlap_meets_the_gate() {
    let (dataset, split, model) = trained();
    let oracle = model.snapshot();
    for encoding in [StorageEncoding::F16, StorageEncoding::I8] {
        let quant = oracle.quantized(encoding);
        assert_eq!(quant.encoding(), encoding);
        let mut overlap_sum = 0.0f64;
        for &user in &split.test_users {
            let want = top10(&oracle, &dataset, &split, user);
            let got = top10(&quant, &dataset, &split, user);
            overlap_sum += want.intersection(&got).count() as f64 / want.len().max(1) as f64;
        }
        let mean = overlap_sum / split.test_users.len() as f64;
        assert!(
            mean >= 0.99,
            "{encoding}: mean top-10 overlap {mean:.4} below the 0.99 gate"
        );
    }
}

/// f16 and int8 shrink table bytes by exactly 2x and ~4x (plus one f32
/// scale per row) relative to f32 — the memory-footprint claim README
/// documents.
#[test]
fn quantized_tables_shrink_as_documented() {
    let (_, _, model) = trained();
    let snap = model.snapshot();
    let f32_bytes = snap.table_bytes();
    let rows = snap.num_users() + snap.num_pois();
    assert_eq!(
        snap.quantized(StorageEncoding::F16).table_bytes() * 2,
        f32_bytes
    );
    assert_eq!(
        snap.quantized(StorageEncoding::I8).table_bytes(),
        f32_bytes / 4 + rows * 4
    );
}

/// A v2 checkpoint parsed back into a snapshot must score byte-for-byte
/// like the equivalent in-memory snapshot: f32 vs live capture, and each
/// lossy encoding vs `quantized()` over the same parameters.
#[test]
fn mapped_snapshot_scores_bit_identically_to_in_memory() {
    let (dataset, split, model) = trained();
    let capture = model.snapshot();
    let pois = dataset.pois_in_city(split.target_city);
    let user = split.test_users[0];
    for encoding in [
        StorageEncoding::F32,
        StorageEncoding::F16,
        StorageEncoding::I8,
    ] {
        let mut buf = Vec::new();
        st_tensor::save_params_v2(model.params(), encoding, &mut buf).unwrap();
        let mapped = MappedParams::from_owned(buf).unwrap();
        let restored = ModelSnapshot::from_mapped(&mapped).unwrap();
        assert_eq!(restored.encoding(), encoding);
        let want = match encoding {
            StorageEncoding::F32 => capture.score_batch(user, pois),
            lossy => capture.quantized(lossy).score_batch(user, pois),
        };
        assert_eq!(
            restored.score_batch(user, pois),
            want,
            "{encoding}: mapped snapshot diverged from the in-memory path"
        );
    }
}

/// The IVF retrieval index builds straight from quantized POI rows and
/// keeps its recall against the (same-encoding) exact scan.
#[test]
fn retrieval_index_builds_from_quantized_tables() {
    let (dataset, split, model) = trained();
    let quant = model.snapshot().quantized(StorageEncoding::I8);
    let cfg = RetrievalConfig {
        min_catalog: 1,
        ..RetrievalConfig::default()
    };
    let index = RetrievalIndex::build(&quant, &dataset, cfg);
    assert!(index.num_indexed_cities() > 0, "nothing indexed");
    let recall = retrieval_recall_at_k(
        &quant,
        &index,
        &dataset,
        &split.test_users,
        split.target_city,
        10,
    );
    assert!(
        recall >= 0.95,
        "retrieval over int8 tables lost recall: {recall:.4}"
    );
}

/// Malformed checkpoints cannot become snapshots: missing tables and
/// incoherent tower shapes are rejected with clean errors.
#[test]
fn from_mapped_rejects_malformed_stores() {
    use st_tensor::{Init, ParamStore};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    use rand::SeedableRng;

    // No user_emb at all.
    let mut store = ParamStore::new();
    store.register("poi_emb", 4, 8, Init::Zeros, &mut rng);
    let mut buf = Vec::new();
    st_tensor::save_params_v2(&store, StorageEncoding::F32, &mut buf).unwrap();
    let mapped = MappedParams::from_owned(buf).unwrap();
    assert!(ModelSnapshot::from_mapped(&mapped).is_err());

    // Tables present but the tower's first layer expects the wrong width.
    let mut store = ParamStore::new();
    store.register("user_emb", 4, 8, Init::Zeros, &mut rng);
    store.register("poi_emb", 4, 8, Init::Zeros, &mut rng);
    store.register("tower.0.w", 7, 1, Init::Zeros, &mut rng); // want 16 inputs
    store.register("tower.0.b", 1, 1, Init::Zeros, &mut rng);
    let mut buf = Vec::new();
    st_tensor::save_params_v2(&store, StorageEncoding::F32, &mut buf).unwrap();
    let mapped = MappedParams::from_owned(buf).unwrap();
    assert!(ModelSnapshot::from_mapped(&mapped).is_err());
}
