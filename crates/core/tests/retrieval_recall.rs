//! Differential recall suite: the two-stage retrieval path against the
//! exact full-catalog scan, across grid sizes and `nprobe` settings.
//!
//! The exact path is the oracle — recall@k here is the fraction of the
//! oracle's top-k the retrieved top-k reproduces. The shipped defaults
//! must clear recall@10 >= 0.95; the matrix runs document how the knobs
//! trade recall for candidate-set size.

use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset, UserId};
use st_transrec_core::{
    recommend_top_k, recommend_top_k_retrieved, retrieval_recall_at_k, ModelConfig, ModelSnapshot,
    RetrievalConfig, RetrievalIndex, RetrievalOutcome, STTransRec,
};

fn setup(pois: usize, checkins: usize, train: bool) -> (Dataset, CrossingCitySplit, ModelSnapshot) {
    let mut cfg = SynthConfig::tiny();
    cfg.pois = pois;
    cfg.users = 120;
    cfg.checkins = checkins;
    cfg.crossing_users = 60;
    let (d, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
    let mut m = STTransRec::new(&d, &split, ModelConfig::test_small());
    if train {
        m.train_epoch(&d);
    }
    let snap = m.snapshot();
    (d, split, snap)
}

fn test_users(split: &CrossingCitySplit, n: usize) -> Vec<UserId> {
    split.test_users.iter().copied().take(n).collect()
}

#[test]
fn recall_matrix_across_grid_sizes_and_nprobe() {
    let (d, split, snap) = setup(2400, 8000, true);
    let city = split.target_city;
    let users = test_users(&split, 8);
    let catalog = d.pois_in_city(city).len();
    // A budget well under the catalog, so the knobs actually matter.
    let budget = catalog / 4;
    let mut best = 0.0f64;
    for target_cell_pois in [16, 64, 256] {
        for nprobe in [1, 4, 16] {
            let cfg = RetrievalConfig {
                min_catalog: 1,
                max_candidates: budget,
                nprobe,
                target_cell_pois,
                ..RetrievalConfig::default()
            };
            let index = RetrievalIndex::build(&snap, &d, cfg);
            assert!(index.covers(city));
            let recall = retrieval_recall_at_k(&snap, &index, &d, &users, city, 10);
            eprintln!(
                "cells~{target_cell_pois:>3} pois, nprobe {nprobe:>2}: recall@10 = {recall:.3} \
                 (budget {budget}/{catalog})"
            );
            assert!((0.0..=1.0).contains(&recall));
            best = best.max(recall);
        }
    }
    // At least one knob setting under a quarter-catalog budget must be
    // near-exact; if this fails the probe ordering itself is broken.
    assert!(best >= 0.9, "best matrix recall only {best:.3}");
}

#[test]
fn shipped_defaults_meet_the_recall_gate() {
    // Catalog above min_catalog so the default config indexes it.
    let (d, split, snap) = setup(4600, 9000, false);
    let city = split.target_city;
    let catalog = d.pois_in_city(city).len();
    let defaults = RetrievalConfig::default();
    assert!(
        catalog >= defaults.min_catalog,
        "setup must clear the indexing threshold ({catalog} < {})",
        defaults.min_catalog
    );
    let index = RetrievalIndex::build(&snap, &d, defaults);
    assert!(index.covers(city));
    let users = test_users(&split, 10);
    let recall = retrieval_recall_at_k(&snap, &index, &d, &users, city, 10);
    eprintln!("shipped defaults: recall@10 = {recall:.3} over {catalog} POIs");
    assert!(recall >= 0.95, "shipped-default recall@10 = {recall:.3}");
    // And the retrieval path genuinely retrieved (no silent fallback).
    let (_, outcome) = recommend_top_k_retrieved(&snap, &index, &d, users[0], city, 10, &[]);
    assert!(matches!(outcome, RetrievalOutcome::Retrieved { .. }));
}

#[test]
fn sub_budget_retrieval_still_clears_the_gate() {
    // The serving regime the bench gates on: budget well under the
    // catalog, shipped nprobe.
    let (d, split, snap) = setup(4600, 9000, true);
    let city = split.target_city;
    let catalog = d.pois_in_city(city).len();
    let cfg = RetrievalConfig {
        max_candidates: catalog / 3,
        ..RetrievalConfig::default()
    };
    let index = RetrievalIndex::build(&snap, &d, cfg);
    let users = test_users(&split, 8);
    let recall = retrieval_recall_at_k(&snap, &index, &d, &users, city, 10);
    eprintln!(
        "sub-budget ({}/{catalog}): recall@10 = {recall:.3}",
        catalog / 3
    );
    assert!(recall >= 0.95, "sub-budget recall@10 = {recall:.3}");
}

#[test]
fn exclusions_apply_on_the_retrieved_path() {
    let (d, split, snap) = setup(2400, 8000, false);
    let city = split.target_city;
    let cfg = RetrievalConfig {
        min_catalog: 1,
        ..RetrievalConfig::default()
    };
    let index = RetrievalIndex::build(&snap, &d, cfg);
    let user = split.test_users[0];
    let (baseline, _) = recommend_top_k_retrieved(&snap, &index, &d, user, city, 5, &[]);
    let exclude = [baseline[0].poi, baseline[1].poi];
    let (filtered, _) = recommend_top_k_retrieved(&snap, &index, &d, user, city, 5, &exclude);
    assert!(filtered.iter().all(|r| !exclude.contains(&r.poi)));
    // The exact path with the same exclusions agrees when the budget
    // covers the catalog (default 4096 > 1200-ish here).
    assert_eq!(
        filtered,
        recommend_top_k(&snap, &d, user, city, 5, &exclude)
    );
}
