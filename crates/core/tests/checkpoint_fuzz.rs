//! Fuzz-ish robustness test for checkpoint restore on the serving path.
//!
//! Hot-reload feeds `STTransRec::restore` bytes straight from disk; a
//! half-written or corrupted checkpoint must surface as a clean
//! `io::Error` — never a panic, never a huge speculative allocation, and
//! never a partially applied parameter store. This test mangles a valid
//! checkpoint every way the format can break (truncation at every
//! region, bit flips across the header and body, pure garbage) and
//! asserts the model either rejects the bytes with its weights bit-for-
//! bit intact, or — when the damage lands inside weight data and is
//! therefore undetectable — applies a complete, well-formed store.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset};
use st_eval::Scorer;
use st_transrec_core::{ModelConfig, STTransRec};

fn trained_model() -> (Dataset, CrossingCitySplit, STTransRec) {
    let cfg = SynthConfig::tiny();
    let (dataset, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&dataset, CityId(cfg.target_city as u16));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    model.train_epoch(&dataset);
    (dataset, split, model)
}

/// Attempts a restore of `bytes`; on rejection the scores must be
/// untouched, on acceptance the model is reset from `pristine` so the
/// next case starts from the same baseline.
fn check_one(
    model: &mut STTransRec,
    dataset: &Dataset,
    split: &CrossingCitySplit,
    baseline: &[f32],
    pristine: &[u8],
    bytes: &[u8],
    what: &str,
) {
    let user = split.test_users[0];
    let pois = dataset.pois_in_city(split.target_city);
    match model.restore(bytes) {
        Err(_) => {
            // Rejected: the old model must keep serving identical scores.
            assert_eq!(
                model.score_batch(user, pois),
                baseline,
                "{what}: failed restore must not touch parameters"
            );
        }
        Ok(()) => {
            // Mangled bytes that still parse (damage inside weight data)
            // are indistinguishable from a legitimate checkpoint; the
            // store is fully applied either way. Reset for the next case.
            model
                .restore(pristine)
                .expect("pristine checkpoint must restore");
        }
    }
}

#[test]
fn mangled_checkpoints_error_cleanly_and_never_corrupt_the_model() {
    let (dataset, split, mut model) = trained_model();
    let user = split.test_users[0];
    let pois = dataset.pois_in_city(split.target_city);
    let baseline = model.score_batch(user, pois);

    let mut pristine = Vec::new();
    model.save(&mut pristine).unwrap();
    model.restore(pristine.as_slice()).unwrap();
    assert_eq!(model.score_batch(user, pois), baseline);

    // Truncation: every prefix of the header region, then strided cuts
    // through the body (every weight-data offset behaves the same way).
    let mut cuts: Vec<usize> = (0..64.min(pristine.len())).collect();
    cuts.extend((64..pristine.len()).step_by(97));
    for cut in cuts {
        let err = model
            .restore(&pristine[..cut])
            .expect_err("truncated checkpoint must be rejected");
        let _ = err.to_string(); // clean, displayable io::Error
        assert_eq!(
            model.score_batch(user, pois),
            baseline,
            "truncation at {cut} must not touch parameters"
        );
    }

    // Bit flips: exhaustive over the global header, randomized over the
    // rest (param headers and weight data).
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut positions: Vec<usize> = (0..32.min(pristine.len())).collect();
    for _ in 0..256 {
        positions.push(rng.gen_range(0..pristine.len()));
    }
    for pos in positions {
        let mut mangled = pristine.clone();
        mangled[pos] ^= 1 << rng.gen_range(0..8u32);
        check_one(
            &mut model,
            &dataset,
            &split,
            &baseline,
            &pristine,
            &mangled,
            &format!("bit flip at byte {pos}"),
        );
    }

    // Pure garbage of assorted sizes, including one that spells out an
    // implausibly huge matrix shape after a valid magic + version.
    for len in [0usize, 1, 4, 16, 256, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        assert!(
            model.restore(garbage.as_slice()).is_err(),
            "garbage of length {len} must be rejected"
        );
    }
    let mut huge_shape = Vec::new();
    huge_shape.extend_from_slice(b"STPK");
    huge_shape.extend_from_slice(&1u32.to_le_bytes()); // version
    huge_shape.extend_from_slice(&1u32.to_le_bytes()); // count
    huge_shape.extend_from_slice(&1u32.to_le_bytes()); // name_len
    huge_shape.push(b'x');
    huge_shape.extend_from_slice(&0x4000_0000u32.to_le_bytes()); // rows
    huge_shape.extend_from_slice(&0x4000_0000u32.to_le_bytes()); // cols
    assert!(
        model.restore(huge_shape.as_slice()).is_err(),
        "implausible shape must be rejected without allocating it"
    );
    assert_eq!(model.score_batch(user, pois), baseline);
}
