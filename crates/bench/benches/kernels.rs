//! Criterion micro-benchmarks for the hot numeric kernels: matmul, the
//! interaction-tower forward/backward, and the two MMD estimators
//! (the paper's O(D^2) vs O(D) complexity claim, Sec. 3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use st_tensor::{Activation, Gradients, Init, Matrix, Mlp, ParamStore, Tape};
use st_transrec_core::{mmd_loss, MmdEstimator};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SmallRng::seed_from_u64(0);
    for &n in &[32usize, 128, 256] {
        let a = Init::Gaussian { std: 1.0 }.sample(n, n, &mut rng);
        let b = Init::Gaussian { std: 1.0 }.sample(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_tower(c: &mut Criterion) {
    // The Foursquare tower (128 -> 64 -> 32 -> 16 -> 1) on a paper-sized
    // batch of 128 positives x (1 + 4 negatives) = 640 rows.
    let mut rng = SmallRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let tower = Mlp::new(
        &mut store,
        "tower",
        &[128, 64, 32, 16, 1],
        Activation::Relu,
        0.0,
        &mut rng,
    );
    let x = Init::Gaussian { std: 0.5 }.sample(640, 128, &mut rng);
    let targets = Matrix::from_vec(640, 1, (0..640).map(|i| (i % 5 == 0) as u8 as f32).collect());

    let mut group = c.benchmark_group("interaction_tower");
    group.bench_function("forward", |b| {
        b.iter(|| {
            let mut tape = Tape::new(&store);
            let xv = tape.input(x.clone());
            let y = tower.forward(&mut tape, xv, false, &mut rng);
            std::hint::black_box(tape.value(y).sum())
        });
    });
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let mut tape = Tape::new(&store);
            let xv = tape.input(x.clone());
            let logits = tower.forward(&mut tape, xv, true, &mut rng);
            let loss = tape.bce_with_logits(logits, targets.clone());
            let mut grads = Gradients::zeros_like(&store);
            tape.backward(loss, &mut grads);
            std::hint::black_box(grads.global_norm())
        });
    });
    group.finish();
}

fn bench_mmd(c: &mut Criterion) {
    // Quadratic vs linear estimator at growing batch sizes: quadratic
    // scales ~n^2, linear ~n (the Sec. 3.2 complexity argument).
    let mut rng = SmallRng::seed_from_u64(2);
    let store = ParamStore::new();
    let mut group = c.benchmark_group("mmd");
    for &n in &[32usize, 128, 512] {
        let src = Init::Gaussian { std: 1.0 }.sample(n, 64, &mut rng);
        let tgt = Init::Gaussian { std: 1.0 }.sample(n, 64, &mut rng);
        for (label, est) in [
            ("quadratic", MmdEstimator::Quadratic),
            ("linear", MmdEstimator::Linear),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut tape = Tape::new(&store);
                        let a = tape.input(src.clone());
                        let t = tape.input(tgt.clone());
                        let loss = mmd_loss(&mut tape, a, t, 1.0, est);
                        std::hint::black_box(tape.value(loss).item())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_tower, bench_mmd
}
criterion_main!(kernels);
