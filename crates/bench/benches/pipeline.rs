//! Criterion benchmarks for the pipeline stages: Algorithm 1 region
//! segmentation, resampler construction and sampling, skipgram batching,
//! one full joint training step, and top-k inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, PoiId, TextualContextGraph};
use st_eval::Scorer;
use st_transrec_core::{CityResampler, ModelConfig, STTransRec};

fn setup() -> (st_data::Dataset, CrossingCitySplit) {
    let cfg = SynthConfig::yelp_like().with_scale(0.02);
    let (d, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
    (d, split)
}

fn bench_segmentation(c: &mut Criterion) {
    let (d, split) = setup();
    c.bench_function("resampler_build_algorithm1", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(0);
            std::hint::black_box(CityResampler::build(
                &d,
                &split.train,
                CityId(0),
                30,
                0.10,
                0.10,
                &mut rng,
            ))
        });
    });
}

fn bench_resampling(c: &mut Criterion) {
    let (d, split) = setup();
    let mut rng = SmallRng::seed_from_u64(1);
    let resampler =
        CityResampler::build(&d, &split.train, CityId(0), 30, 0.10, 0.10, &mut rng);
    c.bench_function("resample_batch_256", |b| {
        b.iter(|| std::hint::black_box(resampler.sample_batch(256, &mut rng)));
    });
}

fn bench_skipgram_sampling(c: &mut Criterion) {
    let (d, _) = setup();
    let pois: Vec<PoiId> = d.pois().iter().map(|p| p.id).collect();
    let graph = TextualContextGraph::build(&d, &pois, 0.75);
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("skipgram_sample_batch_128x4", |b| {
        b.iter(|| std::hint::black_box(graph.sample_batch(128, 4, &mut rng)));
    });
}

fn bench_train_step(c: &mut Criterion) {
    let (d, split) = setup();
    let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
    c.bench_function("sttransrec_train_step", |b| {
        b.iter(|| std::hint::black_box(model.train_step(&d)));
    });
}

fn bench_inference(c: &mut Criterion) {
    let (d, split) = setup();
    let mut model = STTransRec::new(&d, &split, ModelConfig::test_small());
    model.train_epoch(&d);
    let user = split.test_users[0];
    let pois = d.pois_in_city(split.target_city);
    c.bench_function("score_all_target_pois", |b| {
        b.iter(|| std::hint::black_box(model.score_batch(user, pois)));
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_segmentation, bench_resampling, bench_skipgram_sampling,
              bench_train_step, bench_inference
}
criterion_main!(pipeline);
