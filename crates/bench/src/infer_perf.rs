//! Inference-path perf suite (PR 4): the tape-free `InferCtx` executor
//! versus the autodiff-tape oracle, measured through the frozen
//! [`st_transrec_core::ModelSnapshot`] serving path and written to
//! `BENCH_PR4.json`.
//!
//! Every call the tape path makes pays for training machinery it never
//! uses — graph nodes, backward closures, a fresh buffer pool — while
//! the tape-free path runs the same shared ops over two reusable scratch
//! buffers. The suite times both executors on single-pair and batched
//! scoring, verifies the outputs are bit-identical (the refactor's
//! safety guarantee), and proves the zero-steady-state-allocation claim
//! by watching [`st_transrec_core::InferCtx::grow_events`] across the
//! timed loop.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::{CityId, CrossingCitySplit};
use st_transrec_core::{InferCtx, ModelConfig, ModelSnapshot, STTransRec};
use std::time::Instant;

/// Suite options: the full run (paper-sized tower, written to
/// `BENCH_PR4.json`) or the CI smoke (tiny model, same code paths,
/// loose gates).
#[derive(Debug, Clone)]
pub struct InferPerfOptions {
    /// Tiny model + few iterations, for the CI perf smoke.
    pub smoke: bool,
    /// Timed single-pair calls per executor (after warm-up).
    pub single_iters: usize,
    /// Batched scoring sizes to bench.
    pub batch_sizes: Vec<usize>,
    /// Total pairs to push through each batched mode (iterations are
    /// derived as `pair_budget / batch`, at least 10).
    pub pair_budget: usize,
}

impl InferPerfOptions {
    /// The full configuration used to produce `BENCH_PR4.json`.
    pub fn full() -> Self {
        Self {
            smoke: false,
            single_iters: 20_000,
            batch_sizes: vec![16, 256, 2048],
            pair_budget: 400_000,
        }
    }

    /// The CI smoke configuration.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            single_iters: 2_000,
            batch_sizes: vec![8, 64],
            pair_budget: 20_000,
        }
    }
}

/// The synthetic dataset: tiny in the smoke; big enough in the full run
/// that gathers hit realistic table heights.
fn bench_synth(smoke: bool) -> st_data::synth::SynthConfig {
    let mut cfg = st_data::synth::SynthConfig::tiny();
    if !smoke {
        cfg.users = 8_000;
        cfg.pois = 6_000;
        cfg.checkins = 30_000;
        cfg.crossing_users = 400;
    }
    cfg
}

/// The model: the paper's Foursquare tower (128 -> 64 -> 32 -> 16 -> 1)
/// in the full run, `test_small` in the smoke. Inference timing needs no
/// training — both executors read the same (random) parameters.
fn bench_model_config(smoke: bool) -> ModelConfig {
    let mut cfg = ModelConfig::test_small();
    if !smoke {
        cfg.embedding_dim = 64;
        cfg.hidden = vec![64, 32, 16];
    }
    cfg
}

/// One timed mode: executor x batch size.
#[derive(Debug, Clone)]
pub struct PredictModeBench {
    /// `"tape"` (autodiff oracle) or `"infer"` (tape-free snapshot path).
    pub executor: String,
    /// Pairs per scoring call (1 = single-pair serving).
    pub batch: usize,
    /// Timed calls.
    pub iters: usize,
    /// Mean wall-clock per scoring call, nanoseconds.
    pub ns_per_call: f64,
    /// Scored pairs per second.
    pub pairs_per_sec: f64,
}

json_object_impl!(PredictModeBench {
    executor,
    batch,
    iters,
    ns_per_call,
    pairs_per_sec,
});

/// The acceptance gates this PR's benchmark must clear.
#[derive(Debug, Clone)]
pub struct InferAcceptance {
    /// Tape-over-infer single-pair throughput ratio (>1 means the
    /// tape-free path wins; the full gate demands >= 2).
    pub single_pair_speedup: f64,
    /// Best tape-over-infer ratio across the batched sizes.
    pub batched_best_speedup: f64,
    /// Tape path, tape-free live path and frozen snapshot all produced
    /// bitwise-equal scores on every checked batch.
    pub bit_identical: bool,
    /// Scratch-buffer growths during the timed steady-state loop (the
    /// zero-allocation claim: must be 0).
    pub steady_state_grow_events: usize,
}

json_object_impl!(InferAcceptance {
    single_pair_speedup,
    batched_best_speedup,
    bit_identical,
    steady_state_grow_events,
});

/// The full inference-perf report written to `BENCH_PR4.json`.
#[derive(Debug, Clone)]
pub struct InferPerfReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host.
    pub host_threads: usize,
    /// Whether this is the CI smoke run.
    pub smoke: bool,
    /// Interaction-tower widths benched.
    pub tower_widths: Vec<usize>,
    /// All timed modes.
    pub modes: Vec<PredictModeBench>,
    /// Acceptance summary.
    pub acceptance: InferAcceptance,
}

json_object_impl!(InferPerfReport {
    schema,
    pr,
    host_threads,
    smoke,
    tower_widths,
    modes,
    acceptance,
});

impl InferPerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

/// `(users, pois)` index slices of length `n`, cycling over the catalog.
fn pairs(n: usize, num_users: usize, pool: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let users = (0..n).map(|i| i % num_users).collect();
    let pois = (0..n).map(|i| pool[i % pool.len()]).collect();
    (users, pois)
}

/// Times `iters` calls of `f`, feeding each call's scores into a sink so
/// the work cannot be optimized away. Returns mean ns per call.
fn time_calls(iters: usize, mut f: impl FnMut() -> Vec<f32>) -> f64 {
    let mut sink = 0.0f32;
    let start = Instant::now();
    for _ in 0..iters {
        let scores = f();
        sink += scores[0];
    }
    let elapsed = start.elapsed();
    assert!(std::hint::black_box(sink).is_finite(), "scores diverged");
    elapsed.as_nanos() as f64 / iters as f64
}

fn bench_pair(
    model: &STTransRec,
    snapshot: &ModelSnapshot,
    ctx: &mut InferCtx,
    batch: usize,
    iters: usize,
    num_users: usize,
    pool: &[usize],
) -> (PredictModeBench, PredictModeBench) {
    let (users, pois) = pairs(batch, num_users, pool);
    // Warm-up both executors (and the reusable scratch) at this shape.
    for _ in 0..3 {
        let _ = model.predict_tape(&users, &pois);
        let _ = snapshot.predict_with(ctx, &users, &pois);
    }
    let tape_ns = time_calls(iters, || model.predict_tape(&users, &pois));
    let infer_ns = time_calls(iters, || snapshot.predict_with(ctx, &users, &pois));
    let mode = |executor: &str, ns: f64| PredictModeBench {
        executor: executor.to_string(),
        batch,
        iters,
        ns_per_call: ns,
        pairs_per_sec: batch as f64 * 1e9 / ns,
    };
    (mode("tape", tape_ns), mode("infer", infer_ns))
}

/// Runs the whole inference-perf suite.
pub fn run_infer_suite(opts: &InferPerfOptions) -> InferPerfReport {
    let synth = bench_synth(opts.smoke);
    let (dataset, _) = st_data::synth::generate(&synth);
    let split = CrossingCitySplit::build(&dataset, CityId(synth.target_city as u16));
    let config = bench_model_config(opts.smoke);
    let tower_widths = config.tower_widths();
    let model = STTransRec::new(&dataset, &split, config);
    let snapshot = model.snapshot();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let pool: Vec<usize> = dataset
        .pois_in_city(split.target_city)
        .iter()
        .map(|p| p.idx())
        .collect();
    let num_users = dataset.num_users();

    // Bit-identity across every benched shape: tape oracle, tape-free
    // live model, frozen snapshot.
    let mut bit_identical = true;
    for &batch in std::iter::once(&1usize).chain(&opts.batch_sizes) {
        let (users, pois) = pairs(batch, num_users, &pool);
        let oracle = model.predict_tape(&users, &pois);
        let live = model.predict(&users, &pois);
        let frozen = snapshot.predict(&users, &pois);
        bit_identical &= oracle
            .iter()
            .zip(&live)
            .zip(&frozen)
            .all(|((a, b), c)| a.to_bits() == b.to_bits() && a.to_bits() == c.to_bits());
    }

    // One long-lived scratch context, as the serve batcher holds.
    let mut ctx = InferCtx::new();
    let mut modes = Vec::new();

    let (tape_single, infer_single) = bench_pair(
        &model,
        &snapshot,
        &mut ctx,
        1,
        opts.single_iters,
        num_users,
        &pool,
    );
    let single_pair_speedup = tape_single.ns_per_call / infer_single.ns_per_call;
    modes.push(tape_single);
    modes.push(infer_single);

    let mut batched_best_speedup = 0.0f64;
    for &batch in &opts.batch_sizes {
        let iters = (opts.pair_budget / batch).max(10);
        let (tape, infer) = bench_pair(&model, &snapshot, &mut ctx, batch, iters, num_users, &pool);
        batched_best_speedup = batched_best_speedup.max(tape.ns_per_call / infer.ns_per_call);
        modes.push(tape);
        modes.push(infer);
    }

    // Zero-allocation steady state: re-run the single-pair shape (the
    // scratch already saw every benched shape) and demand no growth.
    let (users, pois) = pairs(1, num_users, &pool);
    let _ = snapshot.predict_with(&mut ctx, &users, &pois);
    let grows_before = ctx.grow_events();
    for _ in 0..100 {
        let _ = snapshot.predict_with(&mut ctx, &users, &pois);
    }
    let steady_state_grow_events = ctx.grow_events() - grows_before;

    InferPerfReport {
        schema: "st-transrec-infer-perf/v1".to_string(),
        pr: "PR4".to_string(),
        host_threads,
        smoke: opts.smoke,
        tower_widths,
        modes,
        acceptance: InferAcceptance {
            single_pair_speedup,
            batched_best_speedup,
            bit_identical,
            steady_state_grow_events,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_clears_loose_gates() {
        let mut opts = InferPerfOptions::smoke();
        opts.single_iters = 50;
        opts.batch_sizes = vec![8];
        opts.pair_budget = 400;
        let report = run_infer_suite(&opts);
        assert!(report.acceptance.bit_identical);
        assert_eq!(report.acceptance.steady_state_grow_events, 0);
        assert_eq!(report.modes.len(), 4);
        assert!(report.modes.iter().all(|m| m.ns_per_call > 0.0));
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-infer-perf/v1\""));
    }
}
