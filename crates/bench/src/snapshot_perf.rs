//! Quantized-snapshot benchmark (PR 9): v2 container encodings versus
//! the f32 oracle, and memory-mapped reload versus the legacy v1
//! read-and-parse path, written to `BENCH_PR9.json`.
//!
//! Three claims are measured:
//!
//! 1. **Footprint** — bytes/row of each table encoding (f32, f16, int8
//!    with per-row scales) and the resulting container sizes.
//! 2. **Fidelity** — mean top-10 overlap of each lossy encoding against
//!    the f32 oracle on a trained fixture, plus dequantize-on-gather
//!    throughput per encoding.
//! 3. **Reload** — wall-clock to go from a checkpoint file to a
//!    servable parameter view: v1 parses and copies every byte, v2
//!    validates O(header) and maps the rest, so the gap must widen with
//!    table size (the acceptance gate reads the largest size).

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, PoiId};
use st_tensor::{ops, Init, Matrix, ParamStore, StorageEncoding, TableStorage};
use st_transrec_core::{recommend_top_k, ModelConfig, STTransRec};
use std::collections::HashSet;
use std::time::Instant;

/// Suite options: full run (table sizes into the hundreds of thousands
/// of rows, strict 10x reload gate) or the CI smoke variant.
#[derive(Debug, Clone)]
pub struct SnapshotPerfOptions {
    /// Loose gates + small sizes, for CI.
    pub smoke: bool,
    /// Embedding-table row counts to bench reload at (per table; the
    /// store holds two tables of this size plus a small tower).
    pub table_rows: Vec<usize>,
    /// Embedding width for the reload/gather tables.
    pub dim: usize,
    /// Timed reload repetitions per size (the minimum is reported).
    pub reload_reps: usize,
    /// Rows gathered per throughput measurement.
    pub gather_rows: usize,
    /// Training epochs for the overlap fixture.
    pub train_epochs: usize,
    /// Minimum mean top-10 overlap each lossy encoding must reach.
    pub overlap_floor: f64,
    /// Minimum v1-parse / v2-map reload ratio at the largest size.
    pub reload_speedup_floor: f64,
}

impl SnapshotPerfOptions {
    /// The full configuration used to produce `BENCH_PR9.json`.
    pub fn full() -> Self {
        Self {
            smoke: false,
            table_rows: vec![10_000, 50_000, 200_000],
            dim: 64,
            reload_reps: 5,
            gather_rows: 1 << 20,
            train_epochs: 3,
            overlap_floor: 0.99,
            reload_speedup_floor: 10.0,
        }
    }

    /// The CI smoke configuration: one mid-size table, the same 0.99
    /// overlap gate, and a loosened reload floor (shared CI hosts jitter
    /// mmap timings too much for the strict 10x read).
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            table_rows: vec![50_000],
            dim: 64,
            reload_reps: 3,
            gather_rows: 1 << 18,
            train_epochs: 3,
            overlap_floor: 0.99,
            reload_speedup_floor: 3.0,
        }
    }
}

/// One encoding's footprint, fidelity, and gather throughput.
#[derive(Debug, Clone)]
pub struct FormatBench {
    /// Encoding label (`f32` / `f16` / `int8`).
    pub format: String,
    /// Stored bytes per table row at the benched width (int8 includes
    /// its per-row f32 scale).
    pub bytes_per_row: usize,
    /// Mean top-10 overlap against the f32 oracle on the trained
    /// fixture (1.0 for f32 itself).
    pub overlap_top10: f64,
    /// Dequantize-on-gather throughput, million rows/second, through
    /// the same fused kernel serving uses.
    pub gather_mrows_per_sec: f64,
}

json_object_impl!(FormatBench {
    format,
    bytes_per_row,
    overlap_top10,
    gather_mrows_per_sec,
});

/// Reload timings at one table size.
#[derive(Debug, Clone)]
pub struct ReloadBench {
    /// Rows per embedding table (two tables this size in the store).
    pub table_rows: usize,
    /// v1 container bytes on disk.
    pub v1_bytes: u64,
    /// v2 (f32) container bytes on disk.
    pub v2_bytes: u64,
    /// Best-of-N wall-clock to read-and-parse the v1 container, ms.
    pub v1_parse_ms: f64,
    /// Best-of-N wall-clock to validate-and-map the v2 container, ms.
    pub v2_map_ms: f64,
    /// `v1_parse_ms / v2_map_ms`.
    pub speedup: f64,
}

json_object_impl!(ReloadBench {
    table_rows,
    v1_bytes,
    v2_bytes,
    v1_parse_ms,
    v2_map_ms,
    speedup,
});

/// Acceptance summary: the gates this PR must clear.
#[derive(Debug, Clone)]
pub struct SnapshotAcceptance {
    /// Smallest lossy-encoding overlap observed.
    pub min_overlap_top10: f64,
    /// The overlap floor it was gated against.
    pub overlap_floor: f64,
    /// Table size the reload gate is read at.
    pub gate_table_rows: usize,
    /// v1/v2 reload ratio at that size.
    pub gate_reload_speedup: f64,
    /// The reload floor it was gated against.
    pub reload_speedup_floor: f64,
}

json_object_impl!(SnapshotAcceptance {
    min_overlap_top10,
    overlap_floor,
    gate_table_rows,
    gate_reload_speedup,
    reload_speedup_floor,
});

/// The full report written to `BENCH_PR9.json`.
#[derive(Debug, Clone)]
pub struct SnapshotPerfReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Whether this is the CI smoke run.
    pub smoke: bool,
    /// Embedding width used for the reload/gather tables.
    pub dim: usize,
    /// Per-encoding footprint/fidelity/throughput.
    pub formats: Vec<FormatBench>,
    /// Per-size reload timings.
    pub reload: Vec<ReloadBench>,
    /// Acceptance summary.
    pub acceptance: SnapshotAcceptance,
}

json_object_impl!(SnapshotPerfReport {
    schema,
    pr,
    smoke,
    dim,
    formats,
    reload,
    acceptance,
});

impl SnapshotPerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }

    /// Gate violations, empty when the run is acceptable.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let a = &self.acceptance;
        if a.min_overlap_top10 < a.overlap_floor {
            v.push(format!(
                "top-10 overlap {:.4} below the {:.2} floor",
                a.min_overlap_top10, a.overlap_floor
            ));
        }
        if a.gate_reload_speedup < a.reload_speedup_floor {
            v.push(format!(
                "mmap reload speedup {:.1}x at {} rows below the {:.0}x floor",
                a.gate_reload_speedup, a.gate_table_rows, a.reload_speedup_floor
            ));
        }
        v
    }
}

/// Mean top-10 overlap of `candidate` against `oracle` across every
/// crossing-city test user.
fn mean_overlap(
    oracle: &st_transrec_core::ModelSnapshot,
    candidate: &st_transrec_core::ModelSnapshot,
    dataset: &st_data::Dataset,
    split: &CrossingCitySplit,
) -> f64 {
    let mut sum = 0.0f64;
    for &user in &split.test_users {
        let want: HashSet<PoiId> =
            recommend_top_k(oracle, dataset, user, split.target_city, 10, &[])
                .into_iter()
                .map(|r| r.poi)
                .collect();
        let got: HashSet<PoiId> =
            recommend_top_k(candidate, dataset, user, split.target_city, 10, &[])
                .into_iter()
                .map(|r| r.poi)
                .collect();
        sum += want.intersection(&got).count() as f64 / want.len().max(1) as f64;
    }
    sum / split.test_users.len().max(1) as f64
}

/// Million rows/second through the fused gather kernel for one encoding.
fn gather_throughput(table: &TableStorage, rows_to_gather: usize) -> f64 {
    let rows = table.rows();
    let cols = table.cols();
    let batch = 4096.min(rows_to_gather);
    let idx: Vec<usize> = (0..batch).map(|i| (i * 7919) % rows).collect();
    let mut out = Matrix::zeros(batch, cols * 2);
    // Warm one pass (page faults, allocation).
    ops::gather_concat2_assign(table, &idx, table, &idx, &mut out);
    let mut gathered = 0usize;
    let start = Instant::now();
    while gathered < rows_to_gather {
        ops::gather_concat2_assign(table, &idx, table, &idx, &mut out);
        gathered += batch * 2; // two tables per call
    }
    let secs = start.elapsed().as_secs_f64();
    gathered as f64 / secs / 1e6
}

/// A model-shaped store with two `rows x dim` embedding tables and a
/// small tower, as the reload benchmark's subject.
fn reload_store(rows: usize, dim: usize) -> ParamStore {
    let mut rng = SmallRng::seed_from_u64(0x9E3779B97F4A7C15);
    let mut store = ParamStore::new();
    store.register(
        "user_emb",
        rows,
        dim,
        Init::Uniform { limit: 0.1 },
        &mut rng,
    );
    store.register("poi_emb", rows, dim, Init::Uniform { limit: 0.1 }, &mut rng);
    store.register("tower.0.w", dim * 2, 16, Init::XavierUniform, &mut rng);
    store.register("tower.0.b", 1, 16, Init::Zeros, &mut rng);
    store.register("tower.1.w", 16, 1, Init::XavierUniform, &mut rng);
    store.register("tower.1.b", 1, 1, Init::Zeros, &mut rng);
    store
}

fn bench_reload(rows: usize, dim: usize, reps: usize, scratch: &std::path::Path) -> ReloadBench {
    let store = reload_store(rows, dim);
    let v1_path = scratch.join(format!("reload-{rows}.v1"));
    let v2_path = scratch.join(format!("reload-{rows}.v2"));
    st_tensor::save_params(&store, std::fs::File::create(&v1_path).expect("create v1"))
        .expect("write v1");
    st_tensor::save_params_atomic(&store, &v2_path).expect("write v2");
    let v1_bytes = std::fs::metadata(&v1_path).expect("stat v1").len();
    let v2_bytes = std::fs::metadata(&v2_path).expect("stat v2").len();

    let mut v1_best = f64::INFINITY;
    let mut v2_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let loaded =
            st_tensor::load_params(std::fs::File::open(&v1_path).expect("open v1")).expect("v1");
        v1_best = v1_best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(loaded.len(), store.len());
        drop(loaded);

        let start = Instant::now();
        let mapped = st_tensor::map_params(&v2_path).expect("v2");
        v2_best = v2_best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(mapped.len(), store.len());
        drop(mapped);
    }

    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();

    ReloadBench {
        table_rows: rows,
        v1_bytes,
        v2_bytes,
        v1_parse_ms: v1_best,
        v2_map_ms: v2_best,
        speedup: v1_best / v2_best.max(1e-9),
    }
}

/// Runs the whole quantized-snapshot suite.
pub fn run_snapshot_suite(opts: &SnapshotPerfOptions) -> SnapshotPerfReport {
    // Fidelity fixture: a trained tiny model, quantized per encoding.
    let synth = SynthConfig::tiny();
    let (dataset, _) = generate(&synth);
    let split = CrossingCitySplit::build(&dataset, CityId(synth.target_city as u16));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    for _ in 0..opts.train_epochs {
        model.train_epoch(&dataset);
    }
    let oracle = model.snapshot();

    // Throughput fixture: one large table re-encoded per format.
    let gather_src = {
        let rows = *opts.table_rows.first().expect("at least one size");
        let store = reload_store(rows.min(50_000), opts.dim);
        let table = store
            .iter()
            .find(|(_, name, _)| *name == "poi_emb")
            .map(|(_, _, m)| m.clone());
        table.expect("poi_emb registered")
    };

    let mut formats = Vec::new();
    for encoding in [
        StorageEncoding::F32,
        StorageEncoding::F16,
        StorageEncoding::I8,
    ] {
        let overlap = if encoding == StorageEncoding::F32 {
            1.0
        } else {
            mean_overlap(&oracle, &oracle.quantized(encoding), &dataset, &split)
        };
        let table = TableStorage::encode(&gather_src, encoding);
        let bench = FormatBench {
            format: encoding.to_string(),
            bytes_per_row: encoding.bytes_per_row(opts.dim),
            overlap_top10: overlap,
            gather_mrows_per_sec: gather_throughput(&table, opts.gather_rows),
        };
        eprintln!(
            "  format {:>4}: {:>4} B/row  overlap@10 {:.4}  gather {:>8.1} Mrows/s",
            bench.format, bench.bytes_per_row, bench.overlap_top10, bench.gather_mrows_per_sec,
        );
        formats.push(bench);
    }

    let scratch = std::env::temp_dir().join(format!("st-snapshot-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create bench scratch");
    let mut reload = Vec::new();
    for &rows in &opts.table_rows {
        let bench = bench_reload(rows, opts.dim, opts.reload_reps, &scratch);
        eprintln!(
            "  reload {:>7} rows: v1 {:>9} B / {:>8.2} ms   v2 {:>9} B / {:>8.3} ms   {:>6.1}x",
            bench.table_rows,
            bench.v1_bytes,
            bench.v1_parse_ms,
            bench.v2_bytes,
            bench.v2_map_ms,
            bench.speedup,
        );
        reload.push(bench);
    }
    std::fs::remove_dir_all(&scratch).ok();

    let min_overlap = formats
        .iter()
        .map(|f| f.overlap_top10)
        .fold(f64::INFINITY, f64::min);
    let gate = reload.last().expect("at least one reload size");

    SnapshotPerfReport {
        schema: "st-transrec-snapshot-perf/v1".to_string(),
        pr: "PR9".to_string(),
        smoke: opts.smoke,
        dim: opts.dim,
        acceptance: SnapshotAcceptance {
            min_overlap_top10: min_overlap,
            overlap_floor: opts.overlap_floor,
            gate_table_rows: gate.table_rows,
            gate_reload_speedup: gate.speedup,
            reload_speedup_floor: opts.reload_speedup_floor,
        },
        formats,
        reload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_runs_and_gates_hold() {
        let opts = SnapshotPerfOptions {
            smoke: true,
            table_rows: vec![2_000],
            dim: 16,
            reload_reps: 2,
            gather_rows: 1 << 14,
            train_epochs: 3,
            overlap_floor: 0.99,
            // mmap wins even at 2k rows, but CI-shared hosts jitter;
            // this test only checks the machinery, not the full gate.
            reload_speedup_floor: 1.0,
        };
        let report = run_snapshot_suite(&opts);
        assert_eq!(report.formats.len(), 3);
        assert_eq!(report.reload.len(), 1);
        assert!(
            report.violations().is_empty(),
            "violations: {:?}",
            report.violations()
        );
        assert_eq!(report.formats[0].bytes_per_row, 64);
        assert_eq!(report.formats[1].bytes_per_row, 32);
        assert_eq!(report.formats[2].bytes_per_row, 20);
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-snapshot-perf/v1\""));
    }
}
