//! Training-path perf suite (PR 3): row-sparse gradients + lazy sharded
//! Adam versus the dense-oracle path, measured end to end through
//! [`st_transrec_core::ParallelTrainer`] and written to `BENCH_PR3.json`.
//!
//! The benchmark models the embedding-dominated regime the ROADMAP
//! targets: user/POI/word tables two orders of magnitude larger than the
//! rows any one step touches. On that shape the dense path pays
//! O(total weights) per step (zero-filling gradient tables, walking every
//! weight and both Adam moment buffers), while the sparse path pays
//! O(touched rows) — the suite measures exactly that gap, plus the
//! gradient-buffer memory footprint and a lazy-vs-dense parity section.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset};
use st_tensor::GradSlot;
use st_transrec_core::{ModelConfig, ParallelTrainer, STTransRec};
use std::time::Instant;

/// Suite options: the full run (big tables, written to `BENCH_PR3.json`)
/// or the CI smoke (tiny tables, same code paths, loose gates).
#[derive(Debug, Clone)]
pub struct TrainPerfOptions {
    /// Tiny dataset + few steps, for the CI perf smoke.
    pub smoke: bool,
    /// Timed steps per mode (after warm-up).
    pub steps: usize,
    /// Worker counts to bench; sparse mode uses the worker count as the
    /// optimizer shard count too.
    pub worker_counts: Vec<usize>,
}

impl TrainPerfOptions {
    /// The full configuration used to produce `BENCH_PR3.json`.
    pub fn full() -> Self {
        Self {
            smoke: false,
            steps: 10,
            worker_counts: vec![1, 2, 4],
        }
    }

    /// The CI smoke configuration.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            steps: 4,
            worker_counts: vec![1, 2],
        }
    }
}

/// The synthetic dataset: embedding tables ≫ per-step touched rows in the
/// full run; structurally identical but tiny in the smoke.
fn bench_synth(smoke: bool) -> SynthConfig {
    if smoke {
        SynthConfig::tiny()
    } else {
        let mut cfg = SynthConfig::yelp_like();
        // Tables two orders of magnitude over the touched set: the check-in
        // count stays modest (it only feeds the samplers), the user/POI
        // tables grow to production-like heights.
        cfg.users = 60_000;
        cfg.pois = 45_000;
        cfg.checkins = 150_000;
        cfg.crossing_users = 1_500;
        cfg
    }
}

/// The model configuration: small batches against big tables, so the
/// dense path's O(table) per-step cost dominates.
fn bench_model_config(smoke: bool, sparse: bool, shards: usize) -> ModelConfig {
    let mut cfg = ModelConfig::test_small();
    if !smoke {
        cfg.embedding_dim = 32;
        cfg.hidden = vec![32, 16];
        cfg.batch_size = 16;
        cfg.negatives = 4;
        cfg.context_batch = 64;
        cfg.context_negatives = 2;
        cfg.mmd_batch = 16;
    }
    cfg.sparse_gradients = sparse;
    cfg.lazy_optimizer = sparse;
    cfg.optimizer_shards = if sparse { shards.max(1) } else { 1 };
    cfg
}

/// One timed mode: representation x worker count.
#[derive(Debug, Clone)]
pub struct TrainModeBench {
    /// `"dense"` (oracle) or `"sparse"` (row-sparse + lazy Adam).
    pub mode: String,
    /// Data-parallel worker threads.
    pub workers: usize,
    /// Optimizer row-range shards (sparse mode: = workers).
    pub optimizer_shards: usize,
    /// Timed steps.
    pub steps: usize,
    /// Mean wall-clock per training step, ms.
    pub per_step_ms: f64,
    /// Allocated gradient-buffer storage after one step, in f32 elements
    /// (one worker buffer; dense scales with the tables, sparse with the
    /// batch).
    pub grad_buffer_elems: usize,
    /// Whether all parameters stayed finite.
    pub params_finite: bool,
}

json_object_impl!(TrainModeBench {
    mode,
    workers,
    optimizer_shards,
    steps,
    per_step_ms,
    grad_buffer_elems,
    params_finite,
});

/// Lazy-sparse vs dense-oracle parity over a short sequential run.
#[derive(Debug, Clone)]
pub struct ParityBench {
    /// Steps compared.
    pub steps: usize,
    /// First-step losses (computed pre-update) are exactly equal.
    pub first_step_loss_equal: bool,
    /// Final interaction loss, dense oracle.
    pub dense_final_loss: f64,
    /// Final interaction loss, lazy sparse path.
    pub sparse_final_loss: f64,
    /// `|sparse - dense| / dense` at the final step.
    pub rel_final_loss_gap: f64,
}

json_object_impl!(ParityBench {
    steps,
    first_step_loss_equal,
    dense_final_loss,
    sparse_final_loss,
    rel_final_loss_gap,
});

/// The acceptance gates this PR's benchmark must clear.
#[derive(Debug, Clone)]
pub struct TrainAcceptance {
    /// Best dense/sparse per-step ratio across worker counts (>1 means
    /// the sparse path wins).
    pub best_sparse_speedup: f64,
    /// Dense-over-sparse gradient-buffer size ratio (memory no longer
    /// scaling with the tables).
    pub grad_memory_ratio: f64,
    /// Embedding-table rows over per-step touched rows (the ≥100x regime
    /// the acceptance criteria name; informational in the smoke).
    pub table_rows_over_touched: f64,
    /// Every benched mode kept parameters finite.
    pub all_params_finite: bool,
}

json_object_impl!(TrainAcceptance {
    best_sparse_speedup,
    grad_memory_ratio,
    table_rows_over_touched,
    all_params_finite,
});

/// The full training-perf report written to `BENCH_PR3.json`.
#[derive(Debug, Clone)]
pub struct TrainPerfReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host.
    pub host_threads: usize,
    /// Whether this is the CI smoke run.
    pub smoke: bool,
    /// Total embedding-table rows (user + POI + word).
    pub table_rows: usize,
    /// Distinct rows touched by one training step.
    pub touched_rows_per_step: usize,
    /// All timed modes.
    pub modes: Vec<TrainModeBench>,
    /// Lazy-vs-dense parity.
    pub parity: ParityBench,
    /// Acceptance summary.
    pub acceptance: TrainAcceptance,
}

json_object_impl!(TrainPerfReport {
    schema,
    pr,
    host_threads,
    smoke,
    table_rows,
    touched_rows_per_step,
    modes,
    parity,
    acceptance,
});

impl TrainPerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

/// Counts the distinct rows one training step touches, via a fresh
/// row-sparse buffer.
fn touched_rows(model: &STTransRec, dataset: &Dataset) -> usize {
    let mut grads = model.new_grad_buffer();
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    model.accumulate_step(dataset, &mut grads, &mut rng);
    grads
        .iter_slots()
        .map(|(_, slot)| match slot {
            GradSlot::Sparse(s) => s.touched_rows(),
            GradSlot::Dense(m) => m.rows(),
        })
        .sum()
}

/// Allocated elements of one worker gradient buffer after one step.
fn buffer_elems(model: &STTransRec, dataset: &Dataset) -> usize {
    let mut grads = model.new_grad_buffer();
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    model.accumulate_step(dataset, &mut grads, &mut rng);
    grads.allocated_elems()
}

fn bench_mode(
    dataset: &Dataset,
    split: &CrossingCitySplit,
    smoke: bool,
    sparse: bool,
    workers: usize,
    steps: usize,
) -> TrainModeBench {
    let cfg = bench_model_config(smoke, sparse, workers);
    let mut model = STTransRec::new(dataset, split, cfg);
    let grad_buffer_elems = buffer_elems(&model, dataset);
    let mut trainer = ParallelTrainer::new(workers);
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    // Warm-up: populate pools, sparse row maps and optimizer state.
    for _ in 0..2 {
        trainer.train_step(&mut model, dataset, &mut rng);
    }
    let start = Instant::now();
    for _ in 0..steps {
        trainer.train_step(&mut model, dataset, &mut rng);
    }
    let wall = start.elapsed();
    TrainModeBench {
        mode: if sparse { "sparse" } else { "dense" }.to_string(),
        workers,
        optimizer_shards: if sparse { workers } else { 1 },
        steps,
        per_step_ms: wall.as_secs_f64() * 1e3 / steps as f64,
        grad_buffer_elems,
        params_finite: !model.params().has_non_finite(),
    }
}

fn parity_bench(dataset: &Dataset, split: &CrossingCitySplit, smoke: bool) -> ParityBench {
    let steps = 8;
    let run = |sparse: bool| -> (f32, f32) {
        let mut model = STTransRec::new(dataset, split, bench_model_config(smoke, sparse, 1));
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..steps {
            let l = model.train_step(dataset);
            let v = l.interaction_source + l.interaction_target;
            if i == 0 {
                first = v;
            }
            last = v;
        }
        assert!(!model.params().has_non_finite(), "parity run diverged");
        (first, last)
    };
    let (dense_first, dense_last) = run(false);
    let (sparse_first, sparse_last) = run(true);
    ParityBench {
        steps,
        first_step_loss_equal: dense_first == sparse_first,
        dense_final_loss: dense_last as f64,
        sparse_final_loss: sparse_last as f64,
        rel_final_loss_gap: ((sparse_last - dense_last).abs() / dense_last.max(1e-6)) as f64,
    }
}

/// Runs the whole training-perf suite.
pub fn run_train_suite(opts: &TrainPerfOptions) -> TrainPerfReport {
    let synth = bench_synth(opts.smoke);
    let (dataset, _) = generate(&synth);
    let split = CrossingCitySplit::build(&dataset, CityId(synth.target_city as u16));
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Table geometry, measured on a sparse model.
    let probe = STTransRec::new(&dataset, &split, bench_model_config(opts.smoke, true, 1));
    let table_rows: usize = probe
        .params()
        .iter()
        .filter(|(_, name, _)| name.contains("emb"))
        .map(|(_, _, m)| m.rows())
        .sum();
    let touched = touched_rows(&probe, &dataset);
    drop(probe);

    let mut modes = Vec::new();
    for &workers in &opts.worker_counts {
        for sparse in [false, true] {
            modes.push(bench_mode(
                &dataset, &split, opts.smoke, sparse, workers, opts.steps,
            ));
        }
    }
    let parity = parity_bench(&dataset, &split, opts.smoke);

    let mut best_speedup = 0.0f64;
    for &workers in &opts.worker_counts {
        let per = |mode: &str| {
            modes
                .iter()
                .find(|m| m.mode == mode && m.workers == workers)
                .map(|m| m.per_step_ms)
        };
        if let (Some(d), Some(s)) = (per("dense"), per("sparse")) {
            best_speedup = best_speedup.max(d / s);
        }
    }
    let dense_elems = modes
        .iter()
        .find(|m| m.mode == "dense")
        .map(|m| m.grad_buffer_elems)
        .unwrap_or(0);
    let sparse_elems = modes
        .iter()
        .find(|m| m.mode == "sparse")
        .map(|m| m.grad_buffer_elems)
        .unwrap_or(1);
    let acceptance = TrainAcceptance {
        best_sparse_speedup: best_speedup,
        grad_memory_ratio: dense_elems as f64 / (sparse_elems.max(1)) as f64,
        table_rows_over_touched: table_rows as f64 / touched.max(1) as f64,
        all_params_finite: modes.iter().all(|m| m.params_finite),
    };
    TrainPerfReport {
        schema: "st-transrec-train-perf/v1".to_string(),
        pr: "PR3".to_string(),
        host_threads,
        smoke: opts.smoke,
        table_rows,
        touched_rows_per_step: touched,
        modes,
        parity,
        acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_clears_loose_gates() {
        let mut opts = TrainPerfOptions::smoke();
        opts.steps = 2;
        opts.worker_counts = vec![1];
        let report = run_train_suite(&opts);
        assert!(report.acceptance.all_params_finite);
        assert!(report.parity.first_step_loss_equal);
        assert!(report.touched_rows_per_step > 0);
        assert!(report.table_rows > 0);
        // On the tiny set nearly every row is touched, so sparse has no
        // asymptotic edge — just require it stays the same order of
        // magnitude (the full run gates on a >=10x dense/sparse ratio).
        let dense = report.modes.iter().find(|m| m.mode == "dense").unwrap();
        let sparse = report.modes.iter().find(|m| m.mode == "sparse").unwrap();
        assert!(sparse.grad_buffer_elems < dense.grad_buffer_elems * 2);
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-train-perf/v1\""));
    }
}
