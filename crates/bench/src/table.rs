//! ASCII table rendering in the paper's layout plus JSON result dumps.

use st_eval::{Metric, MetricReport};
use std::path::Path;

/// Renders a figure-style block: one table per metric, rows = methods,
/// columns = cutoffs.
pub fn render_metric_table(title: &str, rows: &[(String, MetricReport)], ks: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for metric in Metric::ALL {
        out.push_str(&format!("\n-- {} --\n", metric.name()));
        out.push_str(&format!("{:>14}", "method"));
        for k in ks {
            out.push_str(&format!("     @{k:<3}"));
        }
        out.push('\n');
        for (name, report) in rows {
            out.push_str(&format!("{name:>14}"));
            for &k in ks {
                out.push_str(&format!("   {:.4}", report.get(metric, k)));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders a generic labelled-rows table (Table 2/4/5 style).
pub fn render_rows(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n{:>14}", ""));
    for h in header {
        out.push_str(&format!("  {h:>9}"));
    }
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:>14}"));
        for v in values {
            out.push_str(&format!("  {v:>9.4}"));
        }
        out.push('\n');
    }
    out
}

/// Serializes `value` to `results/<name>.json` (creating the directory),
/// returning the path written. Errors are surfaced, not swallowed — a
/// harness run without its artifacts is a failed run.
pub fn save_json<T: crate::json::ToJson>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().to_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_eval::{rank_metrics, MetricAccumulator};

    fn dummy_report() -> MetricReport {
        let mut acc = MetricAccumulator::new(&[2, 10]);
        acc.add(&rank_metrics(&[0.9, 0.1], &[true, false], &[2, 10]));
        acc.finish()
    }

    #[test]
    fn metric_table_contains_all_sections() {
        let rows = vec![("ItemPop".to_string(), dummy_report())];
        let text = render_metric_table("Fig. 3", &rows, &[2, 10]);
        for needle in [
            "Fig. 3",
            "Recall",
            "Precision",
            "NDCG",
            "MAP",
            "ItemPop",
            "@2",
            "@10",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn rows_table_renders_values() {
        let text = render_rows(
            "Table 2",
            &["1-worker", "2-worker"],
            &[("Foursquare".into(), vec![94.29, 50.74])],
        );
        assert!(text.contains("94.2900"));
        assert!(text.contains("Foursquare"));
    }

    #[test]
    fn save_json_roundtrips() {
        let tmp = std::env::temp_dir().join(format!("st-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let path = save_json("unit-test", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(text.contains('1') && text.contains('3'));
    }
}
