//! Perf-trajectory benchmark binary.
//!
//! Runs the fixed micro + macro suite in [`st_bench::perf`] and writes
//! the report to `BENCH_PR1.json` at the repo root (override the path
//! with `ST_BENCH_OUT`, the best-of repetition count with
//! `ST_BENCH_REPS`). Future perf PRs write `BENCH_PR<n>.json` next to
//! it, so the files form the project's performance trajectory.
//!
//! Build with `--release`: the kernels are written for LLVM
//! autovectorization and a debug build measures nothing meaningful.

use st_bench::perf;
use std::path::PathBuf;

fn main() {
    let reps = std::env::var("ST_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(7);
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json"))
        });

    eprintln!("running perf suite (best of {reps} reps per micro bench)...");
    let report = perf::run_suite(reps);

    for k in &report.kernels {
        eprintln!(
            "  {:>20} {:>22}  naive {:>8.3} ms  blocked {:>8.3} ms  {:>5.2}x  ({:.2} GFLOP/s)",
            k.kernel, k.shape, k.naive_ms, k.blocked_ms, k.speedup, k.blocked_gflops
        );
    }
    let m = &report.mmd_step;
    eprintln!(
        "  {:>20} n={} d={}  reference {:.3} ms  fused {:.3} ms  {:.2}x  (max div {:.2e})",
        "mmd_step", m.n, m.d, m.reference_ms, m.fused_ms, m.speedup, m.max_divergence
    );
    for e in &report.epochs {
        eprintln!(
            "  {:>20} workers={}  {:.1} ms/epoch ({} steps)",
            "epoch", e.workers, e.wall_ms, e.steps
        );
    }
    let t = &report.topk;
    eprintln!(
        "  {:>20} catalog={} threads={}  per-poi {:.2} ms  batched {:.2} ms  sharded {:.2} ms  {:.2}x  identical={}",
        "topk", t.catalog, t.threads, t.per_poi_ms, t.batched_ms, t.sharded_ms, t.speedup, t.rankings_identical
    );

    let a = &report.acceptance;
    eprintln!(
        "acceptance: matmul256 {:.2}x, mmd step {:.2}x, rankings identical: {}",
        a.matmul_256_speedup, a.mmd_step_speedup, a.topk_rankings_identical
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write perf report");
    eprintln!("wrote {}", out_path.display());

    if a.matmul_256_speedup < 2.0 || a.mmd_step_speedup < 2.0 || !a.topk_rankings_identical {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
