//! Regenerates Fig. 9: metric@10 sweep over the dropout rate on both
//! datasets.

use st_bench::experiments::dropout;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    for kind in [DatasetKind::Foursquare, DatasetKind::Yelp] {
        let loaded = load(kind);
        let results = dropout::run(&loaded, &dropout::paper_grid());
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (format!("rho={:.1}", r.dropout), r.report.clone()))
            .collect();
        println!(
            "{}",
            render_metric_table(&format!("Fig. 9 ({}, dropout)", kind.name()), &rows, &[10])
        );
        let name = format!("fig9_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
