//! Inference-path benchmark binary (PR 4).
//!
//! Runs the tape-vs-tape-free predict suite in [`st_bench::infer_perf`]
//! and writes the report to `BENCH_PR4.json` at the repo root (override
//! the path with `ST_BENCH_OUT`, the single-pair iteration count with
//! `ST_BENCH_ITERS`).
//!
//! `--smoke` runs the tiny CI variant: same code paths on a small model,
//! gated on bit-identity and zero steady-state allocations but with a
//! loose speedup bound (tiny towers leave little tape overhead to
//! remove).
//!
//! Build with `--release`: a debug build measures nothing meaningful.

use st_bench::infer_perf::{run_infer_suite, InferPerfOptions};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        InferPerfOptions::smoke()
    } else {
        InferPerfOptions::full()
    };
    if let Some(iters) = std::env::var("ST_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
    {
        opts.single_iters = iters;
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json"))
        });

    eprintln!(
        "running infer perf suite ({} mode, {} single-pair iters, batches {:?})...",
        if smoke { "smoke" } else { "full" },
        opts.single_iters,
        opts.batch_sizes
    );
    let report = run_infer_suite(&opts);

    eprintln!("  tower: {:?}", report.tower_widths);
    for m in &report.modes {
        eprintln!(
            "  {:>5} batch={:<5} {:>12.0} ns/call  {:>12.0} pairs/s",
            m.executor, m.batch, m.ns_per_call, m.pairs_per_sec
        );
    }
    let a = &report.acceptance;
    eprintln!(
        "acceptance: single-pair speedup {:.2}x, batched best {:.2}x, bit-identical={}, steady-state grows={}",
        a.single_pair_speedup, a.batched_best_speedup, a.bit_identical, a.steady_state_grow_events
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write infer perf report");
    eprintln!("wrote {}", out_path.display());

    let failed = if smoke {
        // CI gate: correctness must hold exactly; speed only loosely
        // (shared runners and tiny towers make timing noisy).
        !a.bit_identical || a.steady_state_grow_events != 0 || a.single_pair_speedup < 0.8
    } else {
        !a.bit_identical
            || a.steady_state_grow_events != 0
            || a.single_pair_speedup < 2.0
            || a.batched_best_speedup < 1.0
    };
    if failed {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
