//! Regenerates Table 5: performance vs interaction-tower depth {1..4}.

use st_bench::experiments::depth;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    for kind in [DatasetKind::Foursquare, DatasetKind::Yelp] {
        let loaded = load(kind);
        let results = depth::run(&loaded, &depth::paper_grid());
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (format!("layers={}", r.depth), r.report.clone()))
            .collect();
        println!(
            "{}",
            render_metric_table(
                &format!("Table 5 ({}, tower depth)", kind.name()),
                &rows,
                &[2, 4]
            )
        );
        let name = format!("table5_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
