//! Training-path benchmark binary (PR 3).
//!
//! Runs the dense-vs-sparse training suite in [`st_bench::train_perf`]
//! and writes the report to `BENCH_PR3.json` at the repo root (override
//! the path with `ST_BENCH_OUT`, the timed step count with
//! `ST_BENCH_STEPS`).
//!
//! `--smoke` runs the tiny CI variant: same code paths on a small
//! synthetic dataset, gated only on parameter finiteness and on the
//! sparse path not losing to dense by more than 2x (tiny tables give
//! sparse no asymptotic edge, so the smoke gate is deliberately loose).
//!
//! Build with `--release`: a debug build measures nothing meaningful.

use st_bench::train_perf::{run_train_suite, TrainPerfOptions};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        TrainPerfOptions::smoke()
    } else {
        TrainPerfOptions::full()
    };
    if let Some(steps) = std::env::var("ST_BENCH_STEPS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
    {
        opts.steps = steps;
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json"))
        });

    eprintln!(
        "running train perf suite ({} mode, {} steps/mode, workers {:?})...",
        if smoke { "smoke" } else { "full" },
        opts.steps,
        opts.worker_counts
    );
    let report = run_train_suite(&opts);

    eprintln!(
        "  tables: {} embedding rows, ~{} touched/step ({:.0}x)",
        report.table_rows, report.touched_rows_per_step, report.acceptance.table_rows_over_touched
    );
    for m in &report.modes {
        eprintln!(
            "  {:>6} workers={} shards={}  {:>9.3} ms/step  grad buffer {:>10} elems  finite={}",
            m.mode,
            m.workers,
            m.optimizer_shards,
            m.per_step_ms,
            m.grad_buffer_elems,
            m.params_finite
        );
    }
    let p = &report.parity;
    eprintln!(
        "  parity over {} steps: first-step equal={}  final dense {:.4} vs sparse {:.4} (rel gap {:.3})",
        p.steps, p.first_step_loss_equal, p.dense_final_loss, p.sparse_final_loss, p.rel_final_loss_gap
    );
    let a = &report.acceptance;
    eprintln!(
        "acceptance: sparse speedup {:.2}x, grad memory ratio {:.1}x, table/touched {:.0}x, finite={}",
        a.best_sparse_speedup, a.grad_memory_ratio, a.table_rows_over_touched, a.all_params_finite
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write train perf report");
    eprintln!("wrote {}", out_path.display());

    let failed = if smoke {
        // CI gate: never non-finite, and sparse must not lose by >2x.
        !a.all_params_finite || a.best_sparse_speedup < 0.5 || !p.first_step_loss_equal
    } else {
        !a.all_params_finite
            || a.best_sparse_speedup < 1.0
            || a.grad_memory_ratio < 10.0
            || a.table_rows_over_touched < 100.0
            || !p.first_step_loss_equal
    };
    if failed {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
