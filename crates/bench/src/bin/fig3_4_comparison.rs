//! Regenerates Figs. 3-4: the nine-method comparison.
//!
//! Usage: `fig3_4_comparison [foursquare|yelp]` (default: both).

use st_baselines::Budget;
use st_bench::experiments::comparison;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    let arg = std::env::args().nth(1);
    let kinds: Vec<DatasetKind> = match arg.as_deref().and_then(DatasetKind::parse) {
        Some(k) => vec![k],
        None => vec![DatasetKind::Foursquare, DatasetKind::Yelp],
    };
    for kind in kinds {
        let loaded = load(kind);
        let results = comparison::run(&loaded, Budget::Full);
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (r.method.clone(), r.report.clone()))
            .collect();
        let fig = match kind {
            DatasetKind::Foursquare => "Fig. 3 (Foursquare)",
            DatasetKind::Yelp => "Fig. 4 (Yelp)",
        };
        println!("{}", render_metric_table(fig, &rows, &[2, 4, 6, 8, 10]));
        println!("ST-TransRec Recall@10 improvements over:");
        for (m, imp) in comparison::recall10_improvements(&results) {
            println!("  {m:>10}: {imp:+.1}%");
        }
        println!();
        let name = format!("fig3_4_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
