//! Serving load-generator binary.
//!
//! Default mode drives a real `st-serve` server over loopback through
//! the three scenarios in [`st_bench::serve_load`] and writes the report
//! to `BENCH_PR2.json` at the repo root (override the path with
//! `ST_BENCH_OUT`, the schedule with `ST_LOADGEN_CLIENTS` /
//! `ST_LOADGEN_REQS`).
//!
//! `--chaos [--seed N] [--extra-phases N]` instead replays the seeded
//! fault plan from [`st_bench::chaos`] twice and exits nonzero unless
//! every invariant holds: conservation (each request reaches exactly one
//! terminal outcome), server metrics matching the client tallies, every
//! outcome as the plan predicts, and identical counts across the two
//! passes. The chaos report goes to `BENCH_CHAOS.json` (or
//! `ST_BENCH_OUT`).
//!
//! `--fleet [--seed N] [--extra-phases N]` runs the sharded-serving
//! suite from [`st_bench::fleet`]: replica fleets behind an `st-router`
//! at N = 1/2/4 proving near-linear throughput scaling, a rolling
//! snapshot rollout under load proving zero request loss, and a
//! two-pass seeded fleet-chaos replay proving bit-identical count
//! signatures. Report goes to `BENCH_PR10.json` (or `ST_BENCH_OUT`);
//! knobs: `ST_FLEET_CLIENTS` (per shard), `ST_FLEET_REQS` (per client),
//! `ST_FLEET_PAD_US` (injected per-request inference cost).
//!
//! Build with `--release`: a debug-build forward pass drowns out
//! everything the batcher does.

use st_bench::{chaos, fleet, serve_load};
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

fn run_chaos_mode(mut args: std::env::Args) -> ! {
    let mut seed = 42u64;
    let mut extra_phases = 3usize;
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--chaos" => {}
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be an integer");
                    std::process::exit(2);
                })
            }
            "--extra-phases" => {
                extra_phases = value("--extra-phases").parse().unwrap_or_else(|_| {
                    eprintln!("error: --extra-phases must be an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown chaos-mode flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_CHAOS.json"
            ))
        });

    eprintln!("replaying chaos plan for seed {seed} (twice, {extra_phases} extra phases)...");
    let report = chaos::run_chaos_twice(seed, extra_phases);
    let c = &report.counts;
    eprintln!(
        "  {} phases: submitted {} = served {} + shed {} + expired {} + degraded {} + failed {}",
        report.phases, c.submitted, c.served, c.shed, c.expired, c.degraded, c.failed
    );
    eprintln!(
        "  conservation {} | metrics consistent {} | outcomes expected {} | reproducible {} | shed p99 {} us",
        report.conservation_ok,
        report.metrics_consistent,
        report.all_outcomes_expected,
        report.reproducible,
        report.shed_p99_us
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write chaos report");
    eprintln!("wrote {}", out_path.display());

    if !report.ok() {
        eprintln!("CHAOS INVARIANT VIOLATION (see report above)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn run_fleet_mode(mut args: std::env::Args) -> ! {
    let mut seed = 42u64;
    let mut extra_phases = 2usize;
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--fleet" => {}
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be an integer");
                    std::process::exit(2);
                })
            }
            "--extra-phases" => {
                extra_phases = value("--extra-phases").parse().unwrap_or_else(|_| {
                    eprintln!("error: --extra-phases must be an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown fleet-mode flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let clients_per_shard = env_usize("ST_FLEET_CLIENTS", 2);
    let requests_per_client = env_usize("ST_FLEET_REQS", 150);
    let pad_us = env_usize("ST_FLEET_PAD_US", 2000) as u64;
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_PR10.json"
            ))
        });

    eprintln!(
        "running fleet suite ({clients_per_shard} clients/shard x {requests_per_client} requests, \
         pad {pad_us} us, chaos seed {seed} + {extra_phases} extra phases)..."
    );
    let report = fleet::run_fleet_suite(
        clients_per_shard,
        requests_per_client,
        pad_us,
        seed,
        extra_phases,
    );

    for p in &report.scaling {
        eprintln!(
            "  scale N={}: {:>6.0} req/s over {} clients ({} requests, {} errors) -> {:.2}x",
            p.replicas, p.throughput_rps, p.clients, p.requests, p.errors, p.speedup
        );
    }
    let r = &report.rollout;
    eprintln!(
        "  rollout N={}: {} requests, {} ok / {} lost, completed {}, ledger {}",
        r.replicas, r.requests, r.ok_200, r.non_200, r.rollout_completed, r.ledger_consistent
    );
    let c = &report.chaos.counts;
    eprintln!(
        "  chaos {} phases: submitted {} = served {} + remapped {} + unreachable {} + dark {} + expired {} + failed {}",
        report.chaos.phases,
        c.submitted,
        c.served,
        c.served_remapped,
        c.unreachable_503,
        c.dark_503,
        c.expired_503,
        c.failed_500
    );
    eprintln!(
        "  chaos conservation {} | metrics consistent {} | reproducible {}",
        report.chaos.conservation_ok, report.chaos.metrics_consistent, report.chaos.reproducible
    );
    let a = &report.acceptance;
    eprintln!(
        "acceptance: speedup@2 {:.2} (>=1.7), speedup@4 {:.2} (>=3.0), zero-loss rollout {}, chaos ok {}",
        a.speedup_2, a.speedup_4, a.zero_loss_rollout, a.chaos_ok
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write fleet report");
    eprintln!("wrote {}", out_path.display());

    if !a.all_gates {
        eprintln!("FLEET ACCEPTANCE GATES NOT MET (see report above)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--chaos") {
        let mut args = std::env::args();
        args.next(); // binary name
        run_chaos_mode(args);
    }
    if std::env::args().any(|a| a == "--fleet") {
        let mut args = std::env::args();
        args.next(); // binary name
        run_fleet_mode(args);
    }
    let clients = env_usize("ST_LOADGEN_CLIENTS", 8);
    let requests_per_client = env_usize("ST_LOADGEN_REQS", 150);
    let reps = env_usize("ST_LOADGEN_REPS", 3);
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json"))
        });

    eprintln!(
        "running serving load suite ({clients} clients x {requests_per_client} requests, best of {reps})..."
    );
    let report = serve_load::run_load_suite(clients, requests_per_client, reps);

    for s in &report.scenarios {
        eprintln!(
            "  {:>22} {:>6.0} req/s  p50 {:>7} us  p99 {:>7} us  mean batch {:>5.2}  hit rate {:>5.2}  errors {}",
            s.scenario, s.throughput_rps, s.p50_us, s.p99_us, s.mean_batch_size, s.cache_hit_rate, s.errors
        );
    }
    let a = &report.acceptance;
    eprintln!(
        "acceptance: batched {:.2}x over serial, cached {:.2}x, all 200s: {}",
        a.batched_throughput_gain, a.cached_throughput_gain, a.all_responses_ok
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write serve-load report");
    eprintln!("wrote {}", out_path.display());

    if a.batched_throughput_gain <= 1.0 || !a.all_responses_ok {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
