//! Quantized-snapshot benchmark binary (PR 9).
//!
//! Runs the v2-container suite in [`st_bench::snapshot_perf`] — bytes
//! per row for each encoding, top-10 overlap of f16/int8 against the
//! f32 oracle, dequantize-on-gather throughput, and mmap-reload versus
//! v1 read-and-parse latency — and writes the report to
//! `BENCH_PR9.json` at the repo root (override the path with
//! `ST_BENCH_OUT`, the table sizes with a comma-separated
//! `ST_BENCH_ROWS`).
//!
//! `--smoke` runs the CI variant: one 50k-row table, the same 0.99
//! overlap gate, and a loose 3x reload floor. The full run sweeps
//! 10k/50k/200k-row tables and demands >= 10x mmap reload speedup at
//! the largest size.
//!
//! Build with `--release`: a debug build measures nothing meaningful.

use st_bench::snapshot_perf::{run_snapshot_suite, SnapshotPerfOptions};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        SnapshotPerfOptions::smoke()
    } else {
        SnapshotPerfOptions::full()
    };
    if let Ok(rows) = std::env::var("ST_BENCH_ROWS") {
        let parsed: Vec<usize> = rows
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&r| r >= 16)
            .collect();
        if !parsed.is_empty() {
            opts.table_rows = parsed;
        }
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json"))
        });

    eprintln!(
        "running snapshot perf suite ({} mode, table sizes {:?}, dim {})...",
        if smoke { "smoke" } else { "full" },
        opts.table_rows,
        opts.dim
    );
    let report = run_snapshot_suite(&opts);

    let a = &report.acceptance;
    eprintln!(
        "acceptance: min overlap@10 {:.4} (floor {:.2}); mmap reload {:.1}x faster than v1 parse \
         at {} rows (floor {:.0}x)",
        a.min_overlap_top10,
        a.overlap_floor,
        a.gate_reload_speedup,
        a.gate_table_rows,
        a.reload_speedup_floor
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write snapshot perf report");
    eprintln!("wrote {}", out_path.display());

    let violations = report.violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("WARNING: {v}");
        }
        std::process::exit(1);
    }
}
