//! Regenerates Table 4: performance vs embedding size {16, 32, 64, 128}.

use st_bench::experiments::embedding_size;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    for kind in [DatasetKind::Foursquare, DatasetKind::Yelp] {
        let loaded = load(kind);
        let results = embedding_size::run(&loaded, &embedding_size::paper_grid());
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (format!("dim={}", r.dim), r.report.clone()))
            .collect();
        println!(
            "{}",
            render_metric_table(
                &format!("Table 4 ({}, embedding size)", kind.name()),
                &rows,
                &[2, 4]
            )
        );
        let name = format!("table4_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
