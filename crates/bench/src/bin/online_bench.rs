//! Online-loop benchmark binary (PR 7).
//!
//! Runs the streaming ingest → incremental train → shadow-eval → gated
//! publish suite in [`st_bench::online_loop`] twice under one seed and
//! writes the report to `BENCH_PR7.json` at the repo root (override the
//! path with `ST_BENCH_OUT`, the seed with `ST_BENCH_SEED`).
//!
//! `--smoke` runs the tiny CI variant (4 cycles on the two-city
//! dataset); the full run does 6 cycles on a scaled Foursquare-like
//! dataset. Both variants enforce the same correctness gates:
//! reproducible publish sequence, every injected regression rejected,
//! every injected crash contained — plus at least one clean publish.
//!
//! Build with `--release`: a debug build measures nothing meaningful.

use st_bench::online_loop::{run_online_suite, OnlineLoopOptions};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        OnlineLoopOptions::smoke()
    } else {
        OnlineLoopOptions::full()
    };
    if let Some(seed) = std::env::var("ST_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        opts.seed = seed;
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json"))
        });

    eprintln!(
        "running online-loop suite ({} mode, seed {}, {} cycles)...",
        if smoke { "smoke" } else { "full" },
        opts.seed,
        opts.cycles
    );
    let report = run_online_suite(&opts);

    let a = &report.acceptance;
    eprintln!(
        "acceptance: {} published / {} rejected / {} crashed; reproducible={}; \
         rejection_defended={}; crash_defended={}; {:.0} events/s ingested; \
         publish latency {:.0}us mean; staleness max {}us",
        a.published,
        a.rejected,
        a.crashed,
        a.reproducible,
        a.rejection_defended,
        a.crash_defended,
        a.events_per_sec,
        a.publish_latency_us_mean,
        a.staleness_us_max
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write online loop report");
    eprintln!("wrote {}", out_path.display());

    // Correctness gates are identical in both modes: the loop must
    // publish, must reject what it injected, must contain the crash,
    // and must replay bit-identically.
    let failed = a.published < 1
        || a.rejected < 1
        || a.crashed < 1
        || !a.reproducible
        || !a.rejection_defended
        || !a.crash_defended;
    if failed {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
