//! Regenerates Table 3: the word-level case study (full model vs the
//! no-text ablation) on the Foursquare-like dataset.

use st_bench::experiments::case_study;
use st_bench::{load, DatasetKind};

fn main() {
    let loaded = load(DatasetKind::Foursquare);
    let t = case_study::run(&loaded);
    println!("{}", case_study::render(&t));
    let path = st_bench::save_json("table3_case_study", &t).expect("write results");
    eprintln!("wrote {}", path.display());
}
