//! Catalog-scaling retrieval benchmark binary (PR 6).
//!
//! Runs the two-stage-retrieval-vs-exact-scan suite in
//! [`st_bench::retrieval_perf`] and writes the report to
//! `BENCH_PR6.json` at the repo root (override the path with
//! `ST_BENCH_OUT`, the catalog scales with a comma-separated
//! `ST_BENCH_SCALES`, and the training epochs with `ST_BENCH_EPOCHS`).
//!
//! `--smoke` runs the tiny CI variant: one 10x catalog, gated on
//! recall@10 >= 0.95 and a loose speedup floor. The full run sweeps
//! 1x/10x/32x/100x catalogs and demands >= 5x speedup with
//! recall@10 >= 0.95 at the 32x gate scale.
//!
//! Build with `--release`: a debug build measures nothing meaningful.

use st_bench::retrieval_perf::{run_retrieval_suite, RetrievalPerfOptions};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        RetrievalPerfOptions::smoke()
    } else {
        RetrievalPerfOptions::full()
    };
    if let Ok(scales) = std::env::var("ST_BENCH_SCALES") {
        let parsed: Vec<usize> = scales
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&s| s >= 1)
            .collect();
        if !parsed.is_empty() {
            opts.scales = parsed;
        }
    }
    if let Some(epochs) = std::env::var("ST_BENCH_EPOCHS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        opts.train_epochs = epochs;
    }
    let out_path: PathBuf = std::env::var("ST_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json"))
        });

    eprintln!(
        "running retrieval perf suite ({} mode, scales {:?}, {} queries/scale)...",
        if smoke { "smoke" } else { "full" },
        opts.scales,
        opts.query_users
    );
    let report = run_retrieval_suite(&opts);

    let a = &report.acceptance;
    eprintln!(
        "acceptance: at {}x catalog speedup {:.2}x, recall@{} {:.3}; {:.0}x catalog growth cost \
         {:.2}x retrieved latency",
        a.gate_scale,
        a.gate_speedup,
        report.k,
        a.gate_recall,
        a.catalog_growth,
        a.retrieved_latency_growth
    );

    let text = report.to_json_string();
    std::fs::write(&out_path, text + "\n").expect("write retrieval perf report");
    eprintln!("wrote {}", out_path.display());

    let failed = if smoke {
        // CI gate: recall must hold exactly; speed only loosely (shared
        // runners, small catalog, index probing overhead).
        a.gate_recall < 0.95 || a.gate_speedup < 1.2
    } else {
        a.gate_recall < 0.95
            || a.gate_speedup < 5.0
            // Sub-linearity: retrieved latency must grow far slower than
            // the catalog across the benched range.
            || a.retrieved_latency_growth > a.catalog_growth / 2.0
    };
    if failed {
        eprintln!("WARNING: acceptance gates not met");
        std::process::exit(1);
    }
}
