//! Regenerates Table 1: dataset statistics vs the paper's numbers.
//!
//! Default scale is 1.0 here (statistics are cheap to generate and the
//! generator is calibrated to the paper at full scale); `ST_SCALE`
//! overrides.

use st_bench::experiments::table1;

fn main() {
    let scale = std::env::var("ST_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let rows = table1::run(scale);
    println!("{}", table1::render(&rows, scale));
    let path = st_bench::save_json("table1_stats", &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
