//! Regenerates Figs. 5-6: the variant ablation study.
//!
//! Usage: `fig5_6_ablation [foursquare|yelp]` (default: both).

use st_bench::experiments::ablation;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    let arg = std::env::args().nth(1);
    let kinds: Vec<DatasetKind> = match arg.as_deref().and_then(DatasetKind::parse) {
        Some(k) => vec![k],
        None => vec![DatasetKind::Foursquare, DatasetKind::Yelp],
    };
    for kind in kinds {
        let loaded = load(kind);
        let results = ablation::run(&loaded);
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (r.variant.clone(), r.report.clone()))
            .collect();
        let fig = match kind {
            DatasetKind::Foursquare => "Fig. 5 (Foursquare ablation)",
            DatasetKind::Yelp => "Fig. 6 (Yelp ablation)",
        };
        println!("{}", render_metric_table(fig, &rows, &[2, 4, 6, 8, 10]));
        println!("Full-model NDCG@10 improvements over:");
        for (v, imp) in ablation::ndcg10_improvements(&results) {
            println!("  {v}: {imp:+.2}%");
        }
        println!();
        let name = format!("fig5_6_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
