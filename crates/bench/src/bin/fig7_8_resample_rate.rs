//! Regenerates Figs. 7-8: metric sweep over resampling rate alpha.
//!
//! Usage: `fig7_8_resample_rate [foursquare|yelp]` (default: both).

use st_bench::experiments::resample_rate;
use st_bench::{load, render_metric_table, DatasetKind};

fn main() {
    let arg = std::env::args().nth(1);
    let kinds: Vec<DatasetKind> = match arg.as_deref().and_then(DatasetKind::parse) {
        Some(k) => vec![k],
        None => vec![DatasetKind::Foursquare, DatasetKind::Yelp],
    };
    for kind in kinds {
        let loaded = load(kind);
        let results = resample_rate::run(&loaded, &resample_rate::paper_grid());
        let rows: Vec<(String, st_eval::MetricReport)> = results
            .iter()
            .map(|r| (format!("alpha={:.2}", r.alpha), r.report.clone()))
            .collect();
        let fig = match kind {
            DatasetKind::Foursquare => "Fig. 7 (Foursquare, resample rate)",
            DatasetKind::Yelp => "Fig. 8 (Yelp, resample rate)",
        };
        println!("{}", render_metric_table(fig, &rows, &[2, 6, 10]));
        let name = format!("fig7_8_{}", kind.name().to_lowercase());
        let path = st_bench::save_json(&name, &results).expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
