//! Regenerates Table 2: per-epoch training time, 1 vs 2 workers.

use st_bench::experiments::table2;
use st_bench::{load, render_rows, DatasetKind};

fn main() {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Yelp] {
        let loaded = load(kind);
        rows.push(table2::run(&loaded, 2));
    }
    let rendered: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            (
                r.dataset.clone(),
                vec![r.single_worker_s, r.two_worker_s, r.speedup()],
            )
        })
        .collect();
    println!(
        "{}",
        render_rows(
            "Table 2: Training Time per Epoch (seconds)",
            &["1-worker", "2-worker", "speedup"],
            &rendered
        )
    );
    println!(
        "(paper, on 2x RTX 2080 Ti: Foursquare 94.29s -> 50.74s, Yelp 275.44s -> 153.73s; the shape to match is the ~1.8-1.9x speedup)"
    );
    let path = st_bench::save_json("table2_parallel", &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
