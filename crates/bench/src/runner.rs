//! Shared experiment plumbing: dataset loading, per-dataset model
//! configuration, and the environment knobs (`ST_SCALE`, `ST_EPOCHS`).

use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset};
use st_eval::EvalConfig;
use st_transrec_core::ModelConfig;

/// The two evaluation datasets of Sec. 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Foursquare-like: Los Angeles target, four source cities.
    Foursquare,
    /// Yelp-like: Phoenix source, Las Vegas target.
    Yelp,
}

impl DatasetKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Foursquare => "Foursquare",
            DatasetKind::Yelp => "Yelp",
        }
    }

    /// Parses a CLI argument ("foursquare" / "yelp", case-insensitive).
    pub fn parse(arg: &str) -> Option<Self> {
        match arg.to_ascii_lowercase().as_str() {
            "foursquare" | "fsq" => Some(DatasetKind::Foursquare),
            "yelp" => Some(DatasetKind::Yelp),
            _ => None,
        }
    }
}

/// The dataset scale factor from `ST_SCALE` (default 0.15).
pub fn scale() -> f64 {
    std::env::var("ST_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(0.15)
}

/// Training epochs from `ST_EPOCHS` (default 4).
pub fn epochs() -> usize {
    std::env::var("ST_EPOCHS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&e| e >= 1)
        .unwrap_or(4)
}

/// The synthetic config for a dataset at a given scale.
pub fn dataset_config(kind: DatasetKind, scale: f64) -> SynthConfig {
    let base = match kind {
        DatasetKind::Foursquare => SynthConfig::foursquare_like(),
        DatasetKind::Yelp => SynthConfig::yelp_like(),
    };
    if (scale - 1.0).abs() < 1e-12 {
        base
    } else {
        base.with_scale(scale)
    }
}

/// The paper's per-dataset neural hyperparameters (Sec. 4.1), with the
/// epoch budget from the environment.
pub fn neural_config(kind: DatasetKind) -> ModelConfig {
    let mut cfg = match kind {
        DatasetKind::Foursquare => ModelConfig::foursquare(),
        DatasetKind::Yelp => ModelConfig::yelp(),
    };
    cfg.epochs = epochs();
    cfg
}

/// The shared evaluation protocol (100 negatives, k in {2,...,10}, fixed
/// seed so candidate sets are identical across methods).
pub fn eval_config() -> EvalConfig {
    EvalConfig::default()
}

/// A loaded experiment environment.
pub struct Loaded {
    /// Which dataset.
    pub kind: DatasetKind,
    /// The generated dataset.
    pub dataset: Dataset,
    /// Crossing-city train/test split.
    pub split: CrossingCitySplit,
    /// The paper's model config for this dataset.
    pub model_config: ModelConfig,
}

/// Generates the dataset at `ST_SCALE` and builds the split.
pub fn load(kind: DatasetKind) -> Loaded {
    load_at(kind, scale())
}

/// Generates at an explicit scale (Table 1 uses 1.0).
pub fn load_at(kind: DatasetKind, scale: f64) -> Loaded {
    let cfg = dataset_config(kind, scale);
    let (dataset, _) = generate(&cfg);
    let target = CityId(cfg.target_city as u16);
    let split = CrossingCitySplit::build(&dataset, target);
    Loaded {
        kind,
        dataset,
        split,
        model_config: neural_config(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_kind() {
        assert_eq!(DatasetKind::parse("yelp"), Some(DatasetKind::Yelp));
        assert_eq!(
            DatasetKind::parse("FOURSQUARE"),
            Some(DatasetKind::Foursquare)
        );
        assert_eq!(DatasetKind::parse("netflix"), None);
    }

    #[test]
    fn load_small_scale_builds_split() {
        let loaded = load_at(DatasetKind::Yelp, 0.01);
        assert!(loaded.split.test_users.len() >= 5);
        assert_eq!(loaded.model_config.embedding_dim, 128);
    }

    #[test]
    fn env_defaults() {
        // Do not set the vars; defaults must hold.
        assert!(scale() > 0.0 && scale() <= 1.0);
        assert!(epochs() >= 1);
    }
}
