//! Perf-trajectory harness: a fixed micro + macro benchmark suite whose
//! results seed `BENCH_PR*.json` at the repo root.
//!
//! The suite pins the three hot paths this codebase optimizes:
//!
//! - **Micro — kernels.** GFLOP/s of the blocked matmul family and the
//!   tiled transpose against their `*_naive` reference kernels, at the
//!   shapes the interaction tower and MMD layer actually hit.
//! - **Micro — MMD step.** One full forward + backward of the quadratic
//!   Gaussian-kernel MMD (Eq. 10) through the fused
//!   [`st_tensor::Tape::gaussian_kernel`] op versus the composite
//!   formulation over the naive kernels.
//! - **Macro — training & serving.** Epoch wall-clock through
//!   [`st_transrec_core::ParallelTrainer`] at 1..N workers, and
//!   full-catalog top-k latency through the batched + sharded scoring
//!   path versus one-tape-per-POI scoring, with a ranking-identity check.
//!
//! Timings are best-of-`reps` (minimum over repetitions), which is the
//! standard way to strip scheduler noise from single-process benches.
//! Each future perf PR appends a `BENCH_PR<n>.json` beside this one so
//! the trajectory stays diffable.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, PoiId, UserId};
use st_eval::Scorer;
use st_tensor::{Gradients, Init, Matrix, ParamStore, Tape};
use st_transrec_core::{
    mmd_loss, mmd_loss_reference, recommend_top_k, MmdEstimator, ModelConfig, ParallelTrainer,
    Recommendation, STTransRec,
};
use std::time::{Duration, Instant};

/// Best-of-`reps` wall time of `f` (after one untimed warm-up call).
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A deterministic pseudo-random matrix for kernel benches.
fn bench_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Init::Gaussian { std: 1.0 }.sample(rows, cols, &mut rng)
}

// ---- micro: kernels --------------------------------------------------------

/// One kernel micro-benchmark: blocked vs. naive at a fixed shape.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Kernel name (`matmul`, `matmul_transpose_a`, ...).
    pub kernel: String,
    /// Shape as `m x k x n` (or `rows x cols` for transpose).
    pub shape: String,
    /// Best-of-reps naive time in milliseconds.
    pub naive_ms: f64,
    /// Best-of-reps blocked time in milliseconds.
    pub blocked_ms: f64,
    /// `naive_ms / blocked_ms`.
    pub speedup: f64,
    /// Naive throughput in GFLOP/s (0 for pure-copy kernels).
    pub naive_gflops: f64,
    /// Blocked throughput in GFLOP/s (0 for pure-copy kernels).
    pub blocked_gflops: f64,
}

json_object_impl!(KernelBench {
    kernel,
    shape,
    naive_ms,
    blocked_ms,
    speedup,
    naive_gflops,
    blocked_gflops,
});

fn kernel_bench(
    kernel: &str,
    shape: String,
    flops: f64,
    reps: usize,
    naive: impl FnMut(),
    blocked: impl FnMut(),
) -> KernelBench {
    let naive_t = time_best(reps, naive);
    let blocked_t = time_best(reps, blocked);
    KernelBench {
        kernel: kernel.to_string(),
        shape,
        naive_ms: ms(naive_t),
        blocked_ms: ms(blocked_t),
        speedup: naive_t.as_secs_f64() / blocked_t.as_secs_f64(),
        naive_gflops: flops / naive_t.as_secs_f64() / 1e9,
        blocked_gflops: flops / blocked_t.as_secs_f64() / 1e9,
    }
}

/// Runs the kernel micro-suite: the matmul family at the NCF tower's and
/// MMD layer's shapes, plus the tiled transpose.
pub fn kernel_suite(reps: usize) -> Vec<KernelBench> {
    let mut out = Vec::new();

    // Square matmuls: the interaction tower's hidden layers live here.
    for &n in &[64usize, 256, 512] {
        let a = bench_matrix(n, n, 1);
        let b = bench_matrix(n, n, 2);
        let flops = 2.0 * (n as f64).powi(3);
        out.push(kernel_bench(
            "matmul",
            format!("{n}x{n}x{n}"),
            flops,
            reps,
            || {
                std::hint::black_box(a.matmul_naive(&b));
            },
            || {
                std::hint::black_box(a.matmul(&b));
            },
        ));
    }

    // Transposed products at the MMD cross-term shape (512 x 64 rows).
    let x = bench_matrix(512, 64, 3);
    let y = bench_matrix(512, 64, 4);
    let flops = 2.0 * 512.0 * 512.0 * 64.0;
    out.push(kernel_bench(
        "matmul_transpose_b",
        "512x64 * (512x64)^T".to_string(),
        flops,
        reps,
        || {
            std::hint::black_box(x.matmul_transpose_b_naive(&y));
        },
        || {
            std::hint::black_box(x.matmul_transpose_b(&y));
        },
    ));
    let g = bench_matrix(512, 512, 5);
    let flops = 2.0 * 512.0 * 512.0 * 64.0;
    out.push(kernel_bench(
        "matmul_transpose_a",
        "(512x512)^T * 512x64".to_string(),
        flops,
        reps,
        || {
            std::hint::black_box(g.matmul_transpose_a_naive(&y));
        },
        || {
            std::hint::black_box(g.matmul_transpose_a(&y));
        },
    ));

    let t = bench_matrix(1024, 1024, 6);
    out.push(kernel_bench(
        "transpose",
        "1024x1024".to_string(),
        0.0,
        reps,
        || {
            std::hint::black_box(t.transpose_naive());
        },
        || {
            std::hint::black_box(t.transpose());
        },
    ));
    out
}

// ---- micro: MMD step -------------------------------------------------------

/// Fused vs. reference quadratic MMD step (forward + backward).
#[derive(Debug, Clone)]
pub struct MmdStepBench {
    /// Samples per side.
    pub n: usize,
    /// Embedding dimension.
    pub d: usize,
    /// Gaussian bandwidth.
    pub sigma: f64,
    /// Reference (composite over naive kernels) step time, ms.
    pub reference_ms: f64,
    /// Fused-kernel step time, ms.
    pub fused_ms: f64,
    /// `reference_ms / fused_ms`.
    pub speedup: f64,
    /// Max |fused - reference| over loss value and both gradients.
    pub max_divergence: f64,
}

json_object_impl!(MmdStepBench {
    n,
    d,
    sigma,
    reference_ms,
    fused_ms,
    speedup,
    max_divergence,
});

/// Times one quadratic-MMD training step (forward + backward on `n x d`
/// batches per side) through the fused path and the reference path.
pub fn mmd_step_suite(n: usize, d: usize, reps: usize) -> MmdStepBench {
    let sigma = 1.0f32;
    let mut rng = SmallRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let s = store.register("s", n, d, Init::Gaussian { std: 1.0 }, &mut rng);
    let t = store.register("t", n, d, Init::Gaussian { std: 1.0 }, &mut rng);

    let step = |fused: bool| -> (f32, Gradients) {
        let mut tape = Tape::new(&store);
        let a = tape.param(s);
        let b = tape.param(t);
        let loss = if fused {
            mmd_loss(&mut tape, a, b, sigma, MmdEstimator::Quadratic)
        } else {
            mmd_loss_reference(&mut tape, a, b, sigma, MmdEstimator::Quadratic)
        };
        let v = tape.value(loss).item();
        let mut grads = Gradients::zeros_like(&store);
        tape.backward(loss, &mut grads);
        (v, grads)
    };

    // Numerical agreement first, so the speedup is over equivalent work.
    let (vf, gf) = step(true);
    let (vr, gr) = step(false);
    let mut div = (vf - vr).abs();
    for pid in [s, t] {
        let a = gf.get(pid).expect("fused grad");
        let b = gr.get(pid).expect("reference grad");
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            div = div.max((x - y).abs());
        }
    }

    let fused_t = time_best(reps, || {
        std::hint::black_box(step(true));
    });
    let reference_t = time_best(reps, || {
        std::hint::black_box(step(false));
    });
    MmdStepBench {
        n,
        d,
        sigma: sigma as f64,
        reference_ms: ms(reference_t),
        fused_ms: ms(fused_t),
        speedup: reference_t.as_secs_f64() / fused_t.as_secs_f64(),
        max_divergence: div as f64,
    }
}

// ---- macro: epoch wall-clock -----------------------------------------------

/// One `ParallelTrainer` epoch measurement.
#[derive(Debug, Clone)]
pub struct EpochBench {
    /// Worker threads.
    pub workers: usize,
    /// Epoch wall-clock, ms.
    pub wall_ms: f64,
    /// Optimizer steps taken in the epoch.
    pub steps: usize,
}

json_object_impl!(EpochBench {
    workers,
    wall_ms,
    steps
});

/// Times one training epoch per worker count on a synthetic dataset.
///
/// Each worker count trains its own freshly seeded model, so the work per
/// data item is identical and only the parallel schedule differs (Table 2's
/// setup).
pub fn epoch_suite(worker_counts: &[usize]) -> Vec<EpochBench> {
    let cfg = SynthConfig::tiny();
    let (dataset, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&dataset, CityId(cfg.target_city as u16));
    worker_counts
        .iter()
        .map(|&workers| {
            let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
            let mut trainer = ParallelTrainer::new(workers);
            // Warm-up epoch populates the per-worker pools' shapes.
            trainer.train_epoch(&mut model, &dataset);
            let timed = trainer.train_epoch(&mut model, &dataset);
            EpochBench {
                workers,
                wall_ms: ms(timed.wall),
                steps: timed.stats.steps,
            }
        })
        .collect()
}

// ---- macro: full-catalog top-k ---------------------------------------------

/// Wraps a scorer so every POI goes through its own single-item batch —
/// the per-POI baseline the batched path must beat and exactly match.
struct PerPoi<'a>(&'a STTransRec);

impl Scorer for PerPoi<'_> {
    fn score_batch(&self, user: UserId, pois: &[PoiId]) -> Vec<f32> {
        pois.iter().map(|&p| self.0.score(user, p)).collect()
    }
}

/// Full-catalog top-k latency: per-POI vs. batched vs. batched + sharded.
#[derive(Debug, Clone)]
pub struct TopKBench {
    /// Candidate-catalog size (POIs in the target city).
    pub catalog: usize,
    /// `k` requested.
    pub k: usize,
    /// Scoring threads used by the sharded path.
    pub threads: usize,
    /// One tape per POI, ms.
    pub per_poi_ms: f64,
    /// One batched forward pass, single thread, ms.
    pub batched_ms: f64,
    /// Batched + sharded across threads, ms.
    pub sharded_ms: f64,
    /// `per_poi_ms / sharded_ms`.
    pub speedup: f64,
    /// Whether the batched ranking is bit-identical to the per-POI one.
    pub rankings_identical: bool,
}

json_object_impl!(TopKBench {
    catalog,
    k,
    threads,
    per_poi_ms,
    batched_ms,
    sharded_ms,
    speedup,
    rankings_identical,
});

/// Times full-catalog ranking on a Yelp-like synthetic city and checks the
/// batched ranking against the per-POI reference, element for element.
pub fn topk_suite(scale: f64, reps: usize) -> TopKBench {
    let cfg = SynthConfig::yelp_like().with_scale(scale);
    let (dataset, _) = generate(&cfg);
    let split = CrossingCitySplit::build(&dataset, CityId(cfg.target_city as u16));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    model.train_epoch(&dataset);

    let user = split.test_users[0];
    let city = split.target_city;
    let catalog = dataset.pois_in_city(city).len();
    let k = catalog; // full ranking: no truncation slack in the identity check
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let per_poi_scorer = PerPoi(&model);
    let ranked_per_poi: Vec<Recommendation> =
        recommend_top_k(&per_poi_scorer, &dataset, user, city, k, &[]);
    let ranked_batched: Vec<Recommendation> = recommend_top_k(&model, &dataset, user, city, k, &[]);
    let rankings_identical = ranked_per_poi == ranked_batched;

    let pois = dataset.pois_in_city(city);
    let per_poi_t = time_best(reps, || {
        std::hint::black_box(per_poi_scorer.score_batch(user, pois));
    });
    let batched_t = time_best(reps, || {
        std::hint::black_box(model.score_batch(user, pois));
    });
    let sharded_t = time_best(reps, || {
        std::hint::black_box(st_eval::score_sharded(&model, user, pois, threads));
    });

    TopKBench {
        catalog,
        k,
        threads,
        per_poi_ms: ms(per_poi_t),
        batched_ms: ms(batched_t),
        sharded_ms: ms(sharded_t),
        speedup: per_poi_t.as_secs_f64() / sharded_t.as_secs_f64(),
        rankings_identical,
    }
}

// ---- report ----------------------------------------------------------------

/// The acceptance gates this PR's benchmarks must clear.
#[derive(Debug, Clone)]
pub struct Acceptance {
    /// Blocked-over-naive speedup on the 256^3 matmul.
    pub matmul_256_speedup: f64,
    /// Fused-over-reference speedup on the n=512, d=64 MMD step.
    pub mmd_step_speedup: f64,
    /// Batched full-catalog ranking matches per-POI exactly.
    pub topk_rankings_identical: bool,
}

json_object_impl!(Acceptance {
    matmul_256_speedup,
    mmd_step_speedup,
    topk_rankings_identical,
});

/// The full perf report written to `BENCH_PR*.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host.
    pub host_threads: usize,
    /// Kernel micro-suite.
    pub kernels: Vec<KernelBench>,
    /// Quadratic MMD step micro-bench.
    pub mmd_step: MmdStepBench,
    /// Epoch wall-clock per worker count.
    pub epochs: Vec<EpochBench>,
    /// Full-catalog top-k latency.
    pub topk: TopKBench,
    /// Acceptance summary.
    pub acceptance: Acceptance,
}

json_object_impl!(PerfReport {
    schema,
    pr,
    host_threads,
    kernels,
    mmd_step,
    epochs,
    topk,
    acceptance,
});

/// Runs the whole suite. `reps` is the best-of repetition count for the
/// micro benches (macro benches run once after a warm-up).
pub fn run_suite(reps: usize) -> PerfReport {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernels = kernel_suite(reps);
    let mmd_step = mmd_step_suite(512, 64, reps);
    let workers: Vec<usize> = [1usize, 2, host_threads]
        .into_iter()
        .filter(|&w| w <= host_threads.max(1))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let epochs = epoch_suite(&workers);
    let topk = topk_suite(0.3, (reps / 2).max(1));

    let matmul_256 = kernels
        .iter()
        .find(|k| k.kernel == "matmul" && k.shape.starts_with("256"))
        .map(|k| k.speedup)
        .unwrap_or(0.0);
    let acceptance = Acceptance {
        matmul_256_speedup: matmul_256,
        mmd_step_speedup: mmd_step.speedup,
        topk_rankings_identical: topk.rankings_identical,
    };
    PerfReport {
        schema: "st-transrec-perf/v1".to_string(),
        pr: "PR1".to_string(),
        host_threads,
        kernels,
        mmd_step,
        epochs,
        topk,
        acceptance,
    }
}

impl PerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_reports_positive_times_and_flops() {
        let a = bench_matrix(16, 16, 0);
        let b = bench_matrix(16, 16, 1);
        let kb = kernel_bench(
            "matmul",
            "16x16x16".into(),
            2.0 * 16f64.powi(3),
            2,
            || {
                std::hint::black_box(a.matmul_naive(&b));
            },
            || {
                std::hint::black_box(a.matmul(&b));
            },
        );
        assert!(kb.naive_ms > 0.0 && kb.blocked_ms > 0.0);
        assert!(kb.speedup > 0.0);
        assert!(kb.blocked_gflops > 0.0);
    }

    #[test]
    fn mmd_step_bench_paths_agree_numerically() {
        let b = mmd_step_suite(32, 8, 1);
        assert!(b.max_divergence < 1e-4, "divergence {}", b.max_divergence);
        assert!(b.fused_ms > 0.0 && b.reference_ms > 0.0);
    }

    #[test]
    fn topk_suite_rankings_are_identical_on_tiny_catalog() {
        let b = topk_suite(0.01, 1);
        assert!(b.rankings_identical);
        assert!(b.catalog > 0);
        assert_eq!(b.k, b.catalog);
    }

    #[test]
    fn report_serializes_with_schema_tag() {
        let report = PerfReport {
            schema: "st-transrec-perf/v1".into(),
            pr: "PR1".into(),
            host_threads: 4,
            kernels: vec![],
            mmd_step: mmd_step_suite(16, 4, 1),
            epochs: vec![],
            topk: topk_suite(0.01, 1),
            acceptance: Acceptance {
                matmul_256_speedup: 2.5,
                mmd_step_speedup: 3.0,
                topk_rankings_identical: true,
            },
        };
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-perf/v1\""));
        assert!(text.contains("\"acceptance\""));
    }
}
