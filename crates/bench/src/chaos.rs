//! Seeded chaos harness: replays a deterministic [`FaultPlan`] against a
//! real `st-serve` server and asserts the overload invariants.
//!
//! The plan expands from a single `u64` seed; execution is gate-based
//! (the [`FaultInjector`] freeze gate plus exact queue-depth rendezvous)
//! rather than timer-based, so the same seed always produces the same
//! terminal-outcome counts — which is exactly what the report asserts:
//!
//! - **Conservation**: every submitted request reaches exactly one
//!   terminal outcome, and `served + shed + expired + degraded + failed
//!   == submitted`.
//! - **No request lost**: every client call returns a response with the
//!   status its phase predicts (a hung or torn response fails the run).
//! - **Metrics agree**: the server's own shed/expired/degraded/failure
//!   counters match the client-side tallies, and the queue drains to 0.
//! - **Shedding stays fast**: a `429` is a synchronous rejection, so the
//!   p99 latency of shed requests is bounded even while the scorer is
//!   frozen solid.
//!
//! `loadgen --chaos --seed N` runs the plan twice and additionally
//! requires the two passes to produce identical counts (the
//! seed-reproducibility contract).

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::{synth, CityId, CrossingCitySplit, Dataset};
use st_serve::client::HttpClient;
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::{BatchConfig, ChaosPhase, FaultInjector, FaultPlan};
use st_transrec_core::{ModelConfig, STTransRec};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving limits the chaos plan is sized against. Small on purpose:
/// tiny queues overflow (and recover) quickly, so every fault mode is
/// exercised in seconds.
pub const QUEUE_CAPACITY: usize = 6;
/// Queue depth at which requests degrade to stale cached results.
pub const DEGRADE_WATERMARK: usize = 4;
/// Queued-request deadline during the run.
pub const DEADLINE: Duration = Duration::from_millis(300);

/// Terminal-outcome tallies for one chaos pass. Conservation means the
/// last five sum to `submitted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosCounts {
    /// `/recommend` requests issued.
    pub submitted: usize,
    /// Served fresh with `200` (includes post-thaw parked requests).
    pub served: usize,
    /// Shed at admission with `429`.
    pub shed: usize,
    /// Expired in queue with `503 deadline-exceeded`.
    pub expired: usize,
    /// Served stale with `200` and a `"degraded": true` marker.
    pub degraded: usize,
    /// Failed by an injected scorer fault with `500`.
    pub failed: usize,
}

json_object_impl!(ChaosCounts {
    submitted,
    served,
    shed,
    expired,
    degraded,
    failed,
});

impl ChaosCounts {
    /// Whether every submission reached exactly one terminal outcome.
    pub fn conserved(&self) -> bool {
        self.served + self.shed + self.expired + self.degraded + self.failed == self.submitted
    }
}

/// The report `loadgen --chaos` writes and gates on.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// The seed that generated (and reproduces) the plan.
    pub seed: u64,
    /// Phases executed per pass.
    pub phases: usize,
    /// Queue bound the server ran with.
    pub queue_capacity: usize,
    /// Degradation watermark the server ran with.
    pub degrade_watermark: usize,
    /// Queued-request deadline, milliseconds.
    pub deadline_ms: u64,
    /// Outcome tallies of the first pass.
    pub counts: ChaosCounts,
    /// p99 client-side latency of shed (`429`) responses, microseconds
    /// (0 when the plan shed nothing).
    pub shed_p99_us: u64,
    /// `served + shed + expired + degraded + failed == submitted`.
    pub conservation_ok: bool,
    /// Server-side counters matched the client-side tallies and the
    /// queue drained to zero.
    pub metrics_consistent: bool,
    /// Every response carried the status its phase predicted.
    pub all_outcomes_expected: bool,
    /// Two passes with the same seed produced identical counts (only
    /// meaningful from `run_chaos_twice`).
    pub reproducible: bool,
}

json_object_impl!(ChaosReport {
    schema,
    seed,
    phases,
    queue_capacity,
    degrade_watermark,
    deadline_ms,
    counts,
    shed_p99_us,
    conservation_ok,
    metrics_consistent,
    all_outcomes_expected,
    reproducible,
});

impl ChaosReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }

    /// Whether every invariant the run gates on held.
    pub fn ok(&self) -> bool {
        self.conservation_ok
            && self.metrics_consistent
            && self.all_outcomes_expected
            && self.reproducible
    }
}

/// Dataset + trained checkpoint shared by every pass.
struct ChaosFixture {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
}

fn build_fixture(seed: u64) -> ChaosFixture {
    let cfg = synth::SynthConfig::tiny();
    let (dataset, _) = synth::generate(&cfg);
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(
        &dataset,
        CityId(cfg.target_city as u16),
    ));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    model.train_epoch(&dataset);
    let dir = std::env::temp_dir().join(format!("st-chaos-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create chaos scratch dir");
    let ckpt = dir.join("model.bin");
    st_tensor::save_params_atomic(model.params(), &ckpt).expect("save ckpt");
    ChaosFixture {
        dataset,
        split,
        ckpt,
    }
}

/// One pass's mutable driving state.
struct Driver<'a> {
    server: &'a Server,
    injector: &'a Arc<FaultInjector>,
    city: u16,
    num_users: usize,
    /// Monotone counter minting never-before-seen `(user, k)` combos so
    /// fresh submissions cannot hit any cache.
    combo: usize,
    counts: ChaosCounts,
    shed_latencies_us: Vec<u64>,
    unexpected: Vec<String>,
}

impl<'a> Driver<'a> {
    /// A `(user, k)` pair no previous request in this pass has used.
    fn fresh_combo(&mut self) -> (usize, usize) {
        let user = self.combo % self.num_users;
        let k = 1 + self.combo / self.num_users;
        self.combo += 1;
        (user, k)
    }

    fn path(&self, user: usize, k: usize) -> String {
        format!("/recommend?user={user}&city={}&k={k}", self.city)
    }

    fn expect(&mut self, what: &str, got: u16, want: u16) {
        if got != want {
            self.unexpected
                .push(format!("{what}: expected {want}, got {got}"));
        }
    }

    /// Blocks until the batcher queue holds exactly `depth` jobs; with
    /// the gate frozen the depth only grows toward it.
    fn wait_for_depth(&self, depth: usize) {
        let metrics = self.server.engine().metrics();
        let deadline = Instant::now() + Duration::from_secs(20);
        while metrics.queue_depth.load(Ordering::Relaxed) != depth as u64 {
            assert!(Instant::now() < deadline, "queue never reached {depth}");
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Parks `combos` requests in the (frozen) queue on background
    /// threads, runs `mid` once they are all queued, and returns every
    /// parked request's status.
    fn with_parked(&mut self, combos: &[(usize, usize)], mid: impl FnOnce(&mut Self)) -> Vec<u16> {
        let addr = self.server.local_addr();
        let city = self.city;
        self.counts.submitted += combos.len();
        std::thread::scope(|scope| {
            let handles: Vec<_> = combos
                .iter()
                .map(|&(user, k)| {
                    scope.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        client
                            .get(&format!("/recommend?user={user}&city={city}&k={k}"))
                            .expect("parked request resolves")
                            .status
                    })
                })
                .collect();
            self.wait_for_depth(combos.len());
            mid(self);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Issues one fresh-combo request expecting a normal `200`.
    fn serve_one(&mut self, client: &mut HttpClient) {
        let (user, k) = self.fresh_combo();
        let path = self.path(user, k);
        self.counts.submitted += 1;
        let status = client.get(&path).expect("request resolves").status;
        self.expect(&path, status, 200);
        self.counts.served += 1;
    }

    fn run_phase(&mut self, phase: &ChaosPhase, client: &mut HttpClient) {
        match *phase {
            ChaosPhase::Normal { requests } => {
                for _ in 0..requests {
                    self.serve_one(client);
                }
            }
            ChaosPhase::PaddedTraffic { requests, pad_us } => {
                self.injector.set_latency_pad(pad_us, pad_us / 4);
                for _ in 0..requests {
                    self.serve_one(client);
                }
                self.injector.set_latency_pad(0, 0);
            }
            ChaosPhase::Burst { excess } => {
                let parked: Vec<_> = (0..QUEUE_CAPACITY).map(|_| self.fresh_combo()).collect();
                let over: Vec<_> = (0..excess).map(|_| self.fresh_combo()).collect();
                self.injector.freeze();
                let statuses = self.with_parked(&parked, |drv| {
                    // Queue exactly full and frozen: every extra request
                    // sheds synchronously; time each rejection.
                    for &(user, k) in &over {
                        let path = drv.path(user, k);
                        drv.counts.submitted += 1;
                        let sent = Instant::now();
                        let status = client.get(&path).expect("shed resolves").status;
                        let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        drv.shed_latencies_us.push(us);
                        drv.expect(&path, status, 429);
                        drv.counts.shed += 1;
                    }
                    drv.injector.thaw();
                });
                for status in statuses {
                    self.expect("burst parked", status, 200);
                    self.counts.served += 1;
                }
            }
            ChaosPhase::DeadlineExpiry { queued } => {
                let parked: Vec<_> = (0..queued).map(|_| self.fresh_combo()).collect();
                self.injector.freeze();
                let statuses = self.with_parked(&parked, |drv| {
                    // Hold the freeze well past the deadline before the
                    // batcher may see (and expire) the queued jobs.
                    std::thread::sleep(DEADLINE + DEADLINE);
                    drv.injector.thaw();
                });
                for status in statuses {
                    self.expect("deadline parked", status, 503);
                    self.counts.expired += 1;
                }
            }
            ChaosPhase::DegradedServe { warm, hits } => {
                // Warm the stale cache, then invalidate the fresh cache
                // by hot-reloading (the epoch bump strands the warmed
                // epoch), then overload past the watermark.
                let warmed: Vec<_> = (0..warm).map(|_| self.fresh_combo()).collect();
                for &(user, k) in &warmed {
                    let path = self.path(user, k);
                    self.counts.submitted += 1;
                    let status = client.get(&path).expect("warm resolves").status;
                    self.expect(&path, status, 200);
                    self.counts.served += 1;
                }
                let reload = client.post("/admin/reload").expect("reload resolves");
                self.expect("/admin/reload", reload.status, 200);

                let parked: Vec<_> = (0..DEGRADE_WATERMARK).map(|_| self.fresh_combo()).collect();
                self.injector.freeze();
                let statuses = self.with_parked(&parked, |drv| {
                    for i in 0..hits {
                        let (user, k) = warmed[i % warmed.len()];
                        let path = drv.path(user, k);
                        drv.counts.submitted += 1;
                        let resp = client.get(&path).expect("degraded resolves");
                        drv.expect(&path, resp.status, 200);
                        if !resp.body.starts_with("{\"degraded\":true,") {
                            drv.unexpected
                                .push(format!("{path}: missing degraded marker: {}", resp.body));
                        }
                        drv.counts.degraded += 1;
                    }
                    drv.injector.thaw();
                });
                for status in statuses {
                    self.expect("degraded parked", status, 200);
                    self.counts.served += 1;
                }
            }
            ChaosPhase::ReloadMidBurst { queued } => {
                let parked: Vec<_> = (0..queued).map(|_| self.fresh_combo()).collect();
                self.injector.freeze();
                let statuses = self.with_parked(&parked, |drv| {
                    let reload = client.post("/admin/reload").expect("reload resolves");
                    drv.expect("/admin/reload mid-burst", reload.status, 200);
                    drv.injector.thaw();
                });
                for status in statuses {
                    self.expect("reload-burst parked", status, 200);
                    self.counts.served += 1;
                }
            }
            ChaosPhase::ScorerFailure { queued } => {
                let parked: Vec<_> = (0..queued).map(|_| self.fresh_combo()).collect();
                self.injector.freeze();
                self.injector.fail_next_batches(1);
                let statuses = self.with_parked(&parked, |drv| drv.injector.thaw());
                for status in statuses {
                    self.expect("scorer-failure parked", status, 500);
                    self.counts.failed += 1;
                }
            }
        }
    }
}

/// Runs one full pass of the plan for `seed`, returning the tallies, the
/// shed-latency samples, the list of unexpected outcomes, and whether
/// the server's own counters agreed with the client-side view.
fn run_pass(fx: &ChaosFixture, plan: &FaultPlan) -> (ChaosCounts, Vec<u64>, Vec<String>, bool) {
    let injector = Arc::new(FaultInjector::new(plan.seed));
    let config = ServeConfig {
        // Every parked request pins an HTTP worker, so the pool must
        // exceed the deepest possible overload (capacity + watermark).
        workers: 2 * QUEUE_CAPACITY + 8,
        batch: BatchConfig {
            window: Duration::ZERO,
            queue_capacity: QUEUE_CAPACITY,
            deadline: DEADLINE,
            ..BatchConfig::default()
        },
        degrade_watermark: DEGRADE_WATERMARK,
        fault: Some(injector.clone()),
        ..ServeConfig::default()
    };
    let reloader = Reloader::new(
        fx.dataset.clone(),
        fx.split.clone(),
        ModelConfig::test_small(),
        &fx.ckpt,
    );
    let model = reloader.load().expect("load ckpt");
    let engine = Engine::new(fx.dataset.clone(), model, Some(reloader), &config);
    let server = Server::start(engine, &config).expect("start server");

    let mut driver = Driver {
        server: &server,
        injector: &injector,
        city: fx.split.target_city.0,
        num_users: fx.dataset.num_users(),
        combo: 0,
        counts: ChaosCounts::default(),
        shed_latencies_us: Vec::new(),
        unexpected: Vec::new(),
    };
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    for phase in &plan.phases {
        driver.run_phase(phase, &mut client);
    }

    let metrics = server.engine().metrics();
    let counts = driver.counts;
    let metrics_consistent = metrics.shed_total.load(Ordering::Relaxed) == counts.shed as u64
        && metrics.expired_total.load(Ordering::Relaxed) == counts.expired as u64
        && metrics.degraded_total.load(Ordering::Relaxed) == counts.degraded as u64
        && metrics.injected_failures_total.load(Ordering::Relaxed) == counts.failed as u64
        && metrics.queue_depth.load(Ordering::Relaxed) == 0;
    let (shed_latencies, unexpected) = (driver.shed_latencies_us, driver.unexpected);
    server.shutdown();
    (counts, shed_latencies, unexpected, metrics_consistent)
}

/// Runs the seeded plan twice against fresh servers and assembles the
/// gating report: conservation, metrics agreement, expected outcomes,
/// and pass-to-pass reproducibility of every count.
pub fn run_chaos_twice(seed: u64, extra_phases: usize) -> ChaosReport {
    let plan = FaultPlan::from_seed(seed, QUEUE_CAPACITY, DEGRADE_WATERMARK, extra_phases);
    let fx = build_fixture(seed);

    let (counts, mut shed_lat, unexpected_a, metrics_a) = run_pass(&fx, &plan);
    let (counts_b, _, unexpected_b, metrics_b) = run_pass(&fx, &plan);

    for msg in unexpected_a.iter().chain(&unexpected_b) {
        eprintln!("chaos: unexpected outcome: {msg}");
    }
    shed_lat.sort_unstable();
    let shed_p99_us = shed_lat
        .get(((shed_lat.len().saturating_sub(1)) as f64 * 0.99).round() as usize)
        .copied()
        .unwrap_or(0);

    ChaosReport {
        schema: "st-transrec-chaos/v1".into(),
        seed,
        phases: plan.phases.len(),
        queue_capacity: QUEUE_CAPACITY,
        degrade_watermark: DEGRADE_WATERMARK,
        deadline_ms: DEADLINE.as_millis() as u64,
        counts,
        shed_p99_us,
        conservation_ok: counts.conserved() && counts_b.conserved(),
        metrics_consistent: metrics_a && metrics_b,
        all_outcomes_expected: unexpected_a.is_empty() && unexpected_b.is_empty(),
        reproducible: counts == counts_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_chaos_run_holds_every_invariant() {
        // One pass per phase deck is enough for the unit tier; the CI
        // smoke runs the full two-pass gate in release mode.
        let report = run_chaos_twice(42, 0);
        assert!(report.conservation_ok, "conservation broke: {report:?}");
        assert!(report.metrics_consistent, "metrics diverged: {report:?}");
        assert!(report.all_outcomes_expected, "bad outcomes: {report:?}");
        assert!(report.reproducible, "counts not reproducible: {report:?}");
        assert!(report.counts.shed > 0, "plan never shed: {report:?}");
        assert!(report.counts.expired > 0, "plan never expired: {report:?}");
        assert!(
            report.counts.degraded > 0,
            "plan never degraded: {report:?}"
        );
        assert!(report.counts.failed > 0, "plan never failed: {report:?}");
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-chaos/v1\""));
        assert!(text.contains("\"reproducible\": true"));
    }
}
