//! Online-loop benchmark (PR 7): ingest throughput, publish latency,
//! staleness, and the chaos acceptance gates of the st-online pipeline.
//!
//! The suite runs the seeded streaming loop **twice** against two fresh
//! embedded servers and checks three things beyond raw numbers:
//!
//! 1. **Reproducibility** — both runs must produce bit-identical
//!    publish/reject/crash sequences, epochs, and shadow metrics.
//! 2. **Rejection defended** — every injected regressing candidate is
//!    rejected by the shadow gate and never moves the serving epoch.
//! 3. **Crash defended** — every injected mid-publish crash leaves the
//!    serving epoch unchanged and the checkpoint loadable.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::synth::{generate, SynthConfig};
use st_data::{CityId, CrossingCitySplit, Dataset};
use st_online::{
    run_embedded, CycleOutcome, FaultPlan, OnlineLoopConfig, OnlineReport, PublishFault,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Suite parameters.
#[derive(Debug, Clone)]
pub struct OnlineLoopOptions {
    /// Master seed for stream, faults, gate, and inits.
    pub seed: u64,
    /// Publish cycles per run (>= 3: the seeded plan needs room for one
    /// clean publish, one regression, and one crash).
    pub cycles: usize,
    /// Dataset scale for the Foursquare-like preset; `None` uses the
    /// tiny two-city preset (CI smoke).
    pub scale: Option<f64>,
}

impl OnlineLoopOptions {
    /// CI smoke variant: tiny dataset, 4 cycles.
    pub fn smoke() -> Self {
        Self {
            seed: 42,
            cycles: 4,
            scale: None,
        }
    }

    /// Full variant: scaled Foursquare-like dataset, 6 cycles.
    pub fn full() -> Self {
        Self {
            seed: 42,
            cycles: 6,
            scale: Some(0.05),
        }
    }
}

/// One cycle, flattened for JSON.
#[derive(Debug, Clone)]
pub struct CycleSummary {
    /// Cycle index.
    pub cycle: usize,
    /// Injected fault label (`clean` / `regress` / `crash`).
    pub fault: String,
    /// Outcome label (`published` / `rejected` / `crashed`).
    pub outcome: String,
    /// Events trained this cycle.
    pub events_trained: usize,
    /// Mean micro-batch loss.
    pub loss: f32,
    /// Candidate hit-rate on the shadow window.
    pub candidate_hit_rate: f64,
    /// Baseline hit-rate on the identical window.
    pub baseline_hit_rate: f64,
    /// Serving epoch after the cycle.
    pub served_epoch: u64,
    /// Publish latency (write → confirmed swap), published cycles only.
    pub publish_latency_us: Option<u64>,
    /// Ingest-start → cycle-end staleness.
    pub staleness_us: u64,
}

json_object_impl!(CycleSummary {
    cycle,
    fault,
    outcome,
    events_trained,
    loss,
    candidate_hit_rate,
    baseline_hit_rate,
    served_epoch,
    publish_latency_us,
    staleness_us,
});

/// One full run of the loop.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-cycle audit trail.
    pub cycles: Vec<CycleSummary>,
    /// Events ingested into training.
    pub events_ingested: usize,
    /// Ingest+train throughput.
    pub events_per_sec: f64,
    /// Serving epoch at loop end.
    pub final_served_epoch: u64,
    /// Successful server reloads.
    pub reloads_ok: u64,
    /// Failed server reloads (must stay 0).
    pub reloads_failed: u64,
}

json_object_impl!(RunSummary {
    cycles,
    events_ingested,
    events_per_sec,
    final_served_epoch,
    reloads_ok,
    reloads_failed,
});

/// The gates CI enforces.
#[derive(Debug, Clone)]
pub struct OnlineAcceptance {
    /// Published cycles in run 1.
    pub published: usize,
    /// Gate-rejected cycles in run 1.
    pub rejected: usize,
    /// Crashed cycles in run 1.
    pub crashed: usize,
    /// Both runs produced identical signatures.
    pub reproducible: bool,
    /// Every injected regression was rejected without an epoch bump.
    pub rejection_defended: bool,
    /// Every injected crash left the epoch unchanged and the checkpoint
    /// loadable.
    pub crash_defended: bool,
    /// Run-1 ingest throughput.
    pub events_per_sec: f64,
    /// Mean publish latency across run-1 published cycles.
    pub publish_latency_us_mean: f64,
    /// Worst ingest→cycle-end staleness in run 1.
    pub staleness_us_max: u64,
}

json_object_impl!(OnlineAcceptance {
    published,
    rejected,
    crashed,
    reproducible,
    rejection_defended,
    crash_defended,
    events_per_sec,
    publish_latency_us_mean,
    staleness_us_max,
});

/// The whole suite's report.
#[derive(Debug, Clone)]
pub struct OnlineBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced this artifact.
    pub pr: String,
    /// Master seed.
    pub seed: u64,
    /// Cycles per run.
    pub cycles: usize,
    /// The two runs (identical modulo wall-clock fields).
    pub runs: Vec<RunSummary>,
    /// Gate evaluation.
    pub acceptance: OnlineAcceptance,
}

json_object_impl!(OnlineBenchReport {
    schema,
    pr,
    seed,
    cycles,
    runs,
    acceptance,
});

impl OnlineBenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "st-online-bench-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn summarize(report: &OnlineReport) -> RunSummary {
    RunSummary {
        cycles: report
            .cycles
            .iter()
            .map(|c| CycleSummary {
                cycle: c.cycle,
                fault: c.fault.label().to_string(),
                outcome: c.outcome.label().to_string(),
                events_trained: c.events_trained,
                loss: c.loss,
                candidate_hit_rate: c.candidate_hit_rate,
                baseline_hit_rate: c.baseline_hit_rate,
                served_epoch: c.served_epoch,
                publish_latency_us: c.publish_latency_us,
                staleness_us: c.staleness_us,
            })
            .collect(),
        events_ingested: report.events_ingested,
        events_per_sec: report.events_per_sec,
        final_served_epoch: report.final_served_epoch,
        reloads_ok: report.reloads_ok,
        reloads_failed: report.reloads_failed,
    }
}

/// True iff every crashed/rejected cycle left the serving epoch exactly
/// where the previous cycle put it (epoch 1 before any cycle ran).
fn epoch_frozen_on(report: &OnlineReport, outcome: CycleOutcome) -> bool {
    report.cycles.iter().all(|c| {
        if c.outcome != outcome {
            return true;
        }
        let prev = if c.cycle == 0 {
            1
        } else {
            report.cycles[c.cycle - 1].served_epoch
        };
        c.served_epoch == prev
    })
}

/// Runs the suite and evaluates every acceptance gate.
pub fn run_online_suite(opts: &OnlineLoopOptions) -> OnlineBenchReport {
    let synth = match opts.scale {
        Some(s) => SynthConfig::foursquare_like().with_scale(s),
        None => SynthConfig::tiny(),
    };
    let target = CityId(synth.target_city as u16);
    let (dataset, _) = generate(&synth);
    let dataset: Arc<Dataset> = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(&dataset, target));

    let mut config = OnlineLoopConfig::smoke(opts.seed);
    config.faults = FaultPlan::seeded(opts.cycles.max(3), opts.seed);

    eprintln!(
        "online loop: {} cycles x2 runs (faults: {} regress, {} crash)...",
        config.faults.len(),
        config.faults.count(PublishFault::Regress),
        config.faults.count(PublishFault::Crash),
    );
    let scratch_a = scratch_dir("a");
    let a = run_embedded(&dataset, &split, &scratch_a, &config).expect("run a");
    let scratch_b = scratch_dir("b");
    let b = run_embedded(&dataset, &split, &scratch_b, &config).expect("run b");

    let rejection_defended = a
        .cycles
        .iter()
        .filter(|c| c.fault == PublishFault::Regress)
        .all(|c| c.outcome == CycleOutcome::Rejected)
        && epoch_frozen_on(&a, CycleOutcome::Rejected);
    let ckpts_load = [&scratch_a, &scratch_b].iter().all(|s| {
        std::fs::File::open(s.join("model.bin"))
            .map(|f| st_tensor::load_params(f).is_ok())
            .unwrap_or(false)
    });
    let crash_defended = epoch_frozen_on(&a, CycleOutcome::Crashed) && ckpts_load;

    let published: Vec<u64> = a
        .cycles
        .iter()
        .filter_map(|c| c.publish_latency_us)
        .collect();
    let acceptance = OnlineAcceptance {
        published: a.count(CycleOutcome::Published),
        rejected: a.count(CycleOutcome::Rejected),
        crashed: a.count(CycleOutcome::Crashed),
        reproducible: a.signature() == b.signature(),
        rejection_defended,
        crash_defended,
        events_per_sec: a.events_per_sec,
        publish_latency_us_mean: if published.is_empty() {
            0.0
        } else {
            published.iter().sum::<u64>() as f64 / published.len() as f64
        },
        staleness_us_max: a.cycles.iter().map(|c| c.staleness_us).max().unwrap_or(0),
    };

    OnlineBenchReport {
        schema: "st-transrec-online-loop/v1".to_string(),
        pr: "PR7".to_string(),
        seed: opts.seed,
        cycles: config.faults.len(),
        runs: vec![summarize(&a), summarize(&b)],
        acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_every_gate() {
        let report = run_online_suite(&OnlineLoopOptions::smoke());
        let a = &report.acceptance;
        assert!(a.published >= 1, "at least one gated publish");
        assert!(a.rejected >= 1, "at least one injected rejection");
        assert_eq!(a.crashed, 1, "exactly one injected crash");
        assert!(a.reproducible, "two same-seed runs must match");
        assert!(a.rejection_defended);
        assert!(a.crash_defended);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].reloads_failed, 0);

        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-online-loop/v1\""));
        assert!(text.contains("\"reproducible\": true"));
    }
}
