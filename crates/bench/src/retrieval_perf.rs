//! Catalog-scaling retrieval benchmark (PR 6): two-stage geo-grid + IVF
//! candidate generation versus the exact sharded scan, written to
//! `BENCH_PR6.json`.
//!
//! The exact path scores every POI of the target city per query, so its
//! latency grows linearly with the catalog. The retrieved path re-ranks
//! at most `max_candidates` candidates no matter how large the catalog
//! gets — the suite synthesizes 1x/10x/32x/100x catalogs from one base
//! config and measures both paths at each scale, plus recall@k of the
//! retrieved top-k against the exact ranking (the correctness budget the
//! speedup is bought with).
//!
//! Run with `--release`; the full suite builds catalogs into the
//! hundreds of thousands of POIs.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::{CityId, CrossingCitySplit, UserId};
use st_transrec_core::{
    recommend_top_k, recommend_top_k_retrieved, retrieval_recall_at_k, ModelConfig,
    RetrievalConfig, RetrievalIndex, RetrievalOutcome, STTransRec,
};
use std::time::Instant;

/// Suite options: the full run (scales up to 100x, strict gates) or the
/// CI smoke (one 10x scale, loose speedup floor).
#[derive(Debug, Clone)]
pub struct RetrievalPerfOptions {
    /// Small scales + loose gates, for the CI retrieval smoke.
    pub smoke: bool,
    /// Catalog multipliers to bench (1 = `base_pois`).
    pub scales: Vec<usize>,
    /// Total POIs at scale 1 (the target-city catalog is about half).
    pub base_pois: usize,
    /// Timed queries per scale (distinct users).
    pub query_users: usize,
    /// Ranking depth for both timing and recall.
    pub k: usize,
    /// Training epochs before snapshotting. The IVF stage indexes the
    /// model's own embedding space, so it needs *some* structure in the
    /// embeddings to be representative — an untrained random table is an
    /// adversarial (and unrealistic) worst case for recall.
    pub train_epochs: usize,
}

impl RetrievalPerfOptions {
    /// The full configuration used to produce `BENCH_PR6.json`.
    pub fn full() -> Self {
        Self {
            smoke: false,
            scales: vec![1, 10, 32, 100],
            base_pois: 5_000,
            query_users: 32,
            k: 10,
            train_epochs: 1,
        }
    }

    /// The CI smoke configuration: one 10x catalog (~10k target POIs —
    /// far enough above the default candidate budget that the retrieved
    /// path has a real advantage to demonstrate).
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            scales: vec![10],
            base_pois: 2_000,
            query_users: 16,
            k: 10,
            train_epochs: 1,
        }
    }
}

/// One catalog scale's measurements.
#[derive(Debug, Clone)]
pub struct ScaleBench {
    /// Catalog multiplier relative to `base_pois`.
    pub scale: usize,
    /// Target-city catalog size actually generated.
    pub catalog: usize,
    /// Wall-clock to build the snapshot's retrieval index, milliseconds.
    pub index_build_ms: f64,
    /// Mean exact-scan latency per query, microseconds.
    pub exact_us_per_query: f64,
    /// Mean retrieved-path latency per query, microseconds.
    pub retrieved_us_per_query: f64,
    /// `exact_us_per_query / retrieved_us_per_query`.
    pub speedup: f64,
    /// Mean re-ranked candidate-set size (equals `catalog` on fallback).
    pub mean_candidates: f64,
    /// Catalog-over-candidates ratio: scored pairs saved per query.
    pub pairs_ratio: f64,
    /// Queries that fell back to the exact scan (index absent/disabled).
    pub fallbacks: usize,
    /// recall@k of the retrieved ranking against the exact ranking.
    pub recall_at_k: f64,
}

json_object_impl!(ScaleBench {
    scale,
    catalog,
    index_build_ms,
    exact_us_per_query,
    retrieved_us_per_query,
    speedup,
    mean_candidates,
    pairs_ratio,
    fallbacks,
    recall_at_k,
});

/// The acceptance gates this PR's benchmark must clear.
#[derive(Debug, Clone)]
pub struct RetrievalAcceptance {
    /// The scale the speedup/recall gates are read at (32x full, 10x
    /// smoke — the largest benched scale at or below it).
    pub gate_scale: usize,
    /// Wall-clock speedup at the gate scale.
    pub gate_speedup: f64,
    /// recall@k at the gate scale.
    pub gate_recall: f64,
    /// Retrieved latency grows sub-linearly: growing the catalog by
    /// `catalog_growth`x from the smallest to the largest benched scale
    /// grew retrieved latency by only `retrieved_latency_growth`x.
    pub catalog_growth: f64,
    /// Retrieved-path latency growth over the same range.
    pub retrieved_latency_growth: f64,
}

json_object_impl!(RetrievalAcceptance {
    gate_scale,
    gate_speedup,
    gate_recall,
    catalog_growth,
    retrieved_latency_growth,
});

/// The full retrieval-perf report written to `BENCH_PR6.json`.
#[derive(Debug, Clone)]
pub struct RetrievalPerfReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host (the exact scan shards
    /// across them; the retrieved path is single-threaded).
    pub host_threads: usize,
    /// Whether this is the CI smoke run.
    pub smoke: bool,
    /// Retrieval knobs the suite ran with (shipped defaults).
    pub max_candidates: usize,
    /// IVF lists probed per query.
    pub nprobe: usize,
    /// Geo-grid ring radius.
    pub grid_rings: usize,
    /// Ranking depth for timing and recall.
    pub k: usize,
    /// Per-scale measurements.
    pub scales: Vec<ScaleBench>,
    /// Acceptance summary.
    pub acceptance: RetrievalAcceptance,
}

json_object_impl!(RetrievalPerfReport {
    schema,
    pr,
    host_threads,
    smoke,
    max_candidates,
    nprobe,
    grid_rings,
    k,
    scales,
    acceptance,
});

impl RetrievalPerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

/// The scaled synthetic dataset: `tiny()`'s two-city world with the POI
/// catalog (and proportional check-in volume) multiplied out.
fn scaled_synth(base_pois: usize, scale: usize) -> st_data::synth::SynthConfig {
    let mut cfg = st_data::synth::SynthConfig::tiny();
    cfg.pois = base_pois * scale;
    cfg.users = 256;
    cfg.crossing_users = 128;
    cfg.checkins = cfg.pois * 4;
    cfg
}

fn bench_scale(opts: &RetrievalPerfOptions, scale: usize, cfg: &RetrievalConfig) -> ScaleBench {
    let synth = scaled_synth(opts.base_pois, scale);
    let (dataset, _) = st_data::synth::generate(&synth);
    let city = CityId(synth.target_city as u16);
    let split = CrossingCitySplit::build(&dataset, city);
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    for _ in 0..opts.train_epochs {
        model.train_epoch(&dataset);
    }
    let frozen = model.snapshot();
    let catalog = dataset.pois_in_city(city).len();

    let build_start = Instant::now();
    let index = RetrievalIndex::build(&frozen, &dataset, cfg.clone());
    let index_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let users: Vec<UserId> = (0..opts.query_users.min(dataset.num_users()))
        .map(|u| UserId(u as u32))
        .collect();

    // Warm both paths (first-touch page faults, scratch growth).
    let _ = recommend_top_k(&frozen, &dataset, users[0], city, opts.k, &[]);
    let _ = recommend_top_k_retrieved(&frozen, &index, &dataset, users[0], city, opts.k, &[]);

    let mut sink = 0usize;
    let start = Instant::now();
    for &user in &users {
        sink += recommend_top_k(&frozen, &dataset, user, city, opts.k, &[]).len();
    }
    let exact_us_per_query = start.elapsed().as_secs_f64() * 1e6 / users.len() as f64;

    let mut outcomes = Vec::with_capacity(users.len());
    let start = Instant::now();
    for &user in &users {
        let (recs, outcome) =
            recommend_top_k_retrieved(&frozen, &index, &dataset, user, city, opts.k, &[]);
        sink += recs.len();
        outcomes.push(outcome);
    }
    let retrieved_us_per_query = start.elapsed().as_secs_f64() * 1e6 / users.len() as f64;
    assert!(std::hint::black_box(sink) > 0, "every query returned empty");

    let mut fallbacks = 0usize;
    let mut candidate_sum = 0usize;
    for o in &outcomes {
        match o {
            RetrievalOutcome::Retrieved { candidates, .. } => candidate_sum += candidates,
            RetrievalOutcome::Fallback => {
                fallbacks += 1;
                candidate_sum += catalog;
            }
        }
    }
    let mean_candidates = candidate_sum as f64 / outcomes.len().max(1) as f64;

    let recall_at_k = retrieval_recall_at_k(&frozen, &index, &dataset, &users, city, opts.k);

    ScaleBench {
        scale,
        catalog,
        index_build_ms,
        exact_us_per_query,
        retrieved_us_per_query,
        speedup: exact_us_per_query / retrieved_us_per_query.max(1e-9),
        mean_candidates,
        pairs_ratio: catalog as f64 / mean_candidates.max(1.0),
        fallbacks,
        recall_at_k,
    }
}

/// Runs the whole catalog-scaling retrieval suite at the shipped
/// [`RetrievalConfig`] defaults.
pub fn run_retrieval_suite(opts: &RetrievalPerfOptions) -> RetrievalPerfReport {
    let cfg = RetrievalConfig::default();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut scales = Vec::new();
    for &scale in &opts.scales {
        let bench = bench_scale(opts, scale, &cfg);
        eprintln!(
            "  scale {:>4}x: catalog {:>7}  exact {:>10.1} us/q  retrieved {:>9.1} us/q  \
             speedup {:>5.2}x  candidates {:>7.0}  recall@{} {:.3}  (index build {:.0} ms)",
            bench.scale,
            bench.catalog,
            bench.exact_us_per_query,
            bench.retrieved_us_per_query,
            bench.speedup,
            bench.mean_candidates,
            opts.k,
            bench.recall_at_k,
            bench.index_build_ms,
        );
        scales.push(bench);
    }

    // The gate scale: 32x in the full run, the largest benched otherwise.
    let gate_target = if opts.smoke { 10 } else { 32 };
    let gate = scales
        .iter()
        .filter(|s| s.scale <= gate_target)
        .max_by_key(|s| s.scale)
        .or_else(|| scales.first())
        .expect("at least one scale benched");
    let first = scales.first().expect("at least one scale benched");
    let last = scales.last().expect("at least one scale benched");

    let acceptance = RetrievalAcceptance {
        gate_scale: gate.scale,
        gate_speedup: gate.speedup,
        gate_recall: gate.recall_at_k,
        catalog_growth: last.catalog as f64 / first.catalog.max(1) as f64,
        retrieved_latency_growth: last.retrieved_us_per_query
            / first.retrieved_us_per_query.max(1e-9),
    };

    RetrievalPerfReport {
        schema: "st-transrec-retrieval-perf/v1".to_string(),
        pr: "PR6".to_string(),
        host_threads,
        smoke: opts.smoke,
        max_candidates: cfg.max_candidates,
        nprobe: cfg.nprobe,
        grid_rings: cfg.grid_rings,
        k: opts.k,
        scales,
        acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_reports_every_scale() {
        let opts = RetrievalPerfOptions {
            smoke: true,
            scales: vec![8],
            base_pois: 600,
            query_users: 6,
            k: 5,
            train_epochs: 0,
        };
        let report = run_retrieval_suite(&opts);
        assert_eq!(report.scales.len(), 1);
        let s = &report.scales[0];
        assert_eq!(s.scale, 8);
        assert!(s.catalog >= 2_048, "catalog {}", s.catalog);
        assert_eq!(s.fallbacks, 0, "a 2.4k-POI catalog must be indexed");
        assert!(s.recall_at_k >= 0.95, "recall {}", s.recall_at_k);
        // The catalog is below the default budget here, so the candidate
        // set may cover it entirely — but never exceed it.
        assert!(s.mean_candidates <= s.catalog as f64);
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-retrieval-perf/v1\""));
    }
}
