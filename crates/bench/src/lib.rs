//! # st-bench
//!
//! The experiment harness: one module per table/figure of the paper,
//! shared dataset loading, ASCII rendering in the paper's layout, and
//! JSON dumps under `results/` so EXPERIMENTS.md numbers are
//! regenerable and diffable.
//!
//! Every binary honours two environment variables:
//!
//! - `ST_SCALE` — dataset scale factor in `(0, 1]` (default 0.15). 1.0
//!   reproduces Table 1's sizes; smaller values keep CI runs fast.
//! - `ST_EPOCHS` — training epochs for the neural models (default 4).

#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod fleet;
pub mod infer_perf;
pub mod json;
pub mod online_loop;
pub mod perf;
pub mod retrieval_perf;
pub mod runner;
pub mod serve_load;
pub mod snapshot_perf;
pub mod table;
pub mod train_perf;

pub use runner::{dataset_config, eval_config, load, neural_config, DatasetKind, Loaded};
pub use table::{render_metric_table, render_rows, save_json};
