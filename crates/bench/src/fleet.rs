//! Fleet-level serving benchmarks behind `loadgen --fleet`: boots N real
//! `st-serve` replicas plus an `st-router` front tier in-process and
//! proves the three claims the sharded serving tier makes.
//!
//! - **Near-linear scaling** — per-request work is pinned to a fixed
//!   fault-injector latency pad (the benching hosts are often
//!   single-core, so CPU-bound replicas would all share one core and
//!   scaling would measure the scheduler, not the router). With each
//!   replica's batcher serialised at `max_batch = 1`, a fleet of N has N
//!   independent pipelines, and throughput through the router must scale
//!   with N.
//! - **Zero-loss rolling reload** — a full rolling snapshot rollout runs
//!   while clients hammer the router; every submitted request must come
//!   back `200`.
//! - **Reproducible fleet chaos** — a seeded [`FleetFaultPlan`] replays
//!   replica kills, batcher hangs, and rolling reloads twice against
//!   fresh fleets; both passes must produce bit-identical count
//!   signatures, conservation must balance, and the router's own ledger
//!   must agree with the client tallies.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::{synth, CityId, CrossingCitySplit, Dataset};
use st_router::{
    BreakerConfig, BreakerState, Fleet, FleetChaosPhase, FleetConfig, FleetFaultPlan,
    PartitionMode, ReplicaId, RolloutConfig, RolloutDriver, RolloutStep, RouteKey, Router,
    RouterConfig, RouterServer,
};
use st_serve::client::HttpClient;
use st_serve::fault::FaultInjector;
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::BatchConfig;
use st_transrec_core::{ModelConfig, STTransRec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Router-breaker threshold used across the suite.
pub const BREAKER_THRESHOLD: u32 = 3;
/// Probe sweeps before a dead replica is marked down.
pub const DOWN_AFTER: u32 = 2;
/// Batcher queue capacity in the chaos fleet.
pub const QUEUE_CAPACITY: usize = 6;
/// Batcher deadline in the chaos fleet (hang phases expire against it).
pub const DEADLINE: Duration = Duration::from_millis(300);

/// Dataset + trained checkpoint shared by every fleet.
struct FleetFixture {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
    oracle: STTransRec,
}

fn build_fixture(tag: &str) -> FleetFixture {
    let cfg = synth::SynthConfig::tiny();
    let (dataset, _) = synth::generate(&cfg);
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(
        &dataset,
        CityId(cfg.target_city as u16),
    ));
    let mut oracle = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    oracle.train_epoch(&dataset);
    let dir = std::env::temp_dir().join(format!("st-fleet-bench-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fleet bench scratch dir");
    let ckpt = dir.join("model.bin");
    st_tensor::save_params_atomic(oracle.params(), &ckpt).expect("save ckpt");
    FleetFixture {
        dataset,
        split,
        ckpt,
        oracle,
    }
}

/// N in-process replicas fronted by one router, all on loopback.
struct FleetHarness {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
    serve_config: ServeConfig,
    servers: Vec<Option<Server>>,
    injectors: Vec<Arc<FaultInjector>>,
    fleet: Arc<Fleet>,
    router: Option<RouterServer>,
}

impl FleetHarness {
    fn start(fx: &FleetFixture, n: usize, mut serve_config: ServeConfig, pad_us: u64) -> Self {
        serve_config.addr = "127.0.0.1:0".into();
        let mut harness = Self {
            dataset: fx.dataset.clone(),
            split: fx.split.clone(),
            ckpt: fx.ckpt.clone(),
            serve_config,
            servers: Vec::with_capacity(n),
            injectors: Vec::with_capacity(n),
            fleet: Arc::new(Fleet::new(&[], fleet_config())),
            router: None,
        };
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let (server, injector) = harness.boot_replica(i as u64, pad_us);
            addrs.push(server.local_addr());
            harness.servers.push(Some(server));
            harness.injectors.push(injector);
        }
        harness.fleet = Arc::new(Fleet::new(&addrs, fleet_config()));
        let router = Router::new(
            harness.fleet.clone(),
            RouterConfig {
                workers: 16,
                probe_interval: None, // the harness drives probes itself
                idle_timeout: Duration::from_secs(60),
                ..RouterConfig::default()
            },
        );
        harness.router = Some(RouterServer::start(router).expect("start router"));
        harness
    }

    fn boot_replica(&self, seed: u64, pad_us: u64) -> (Server, Arc<FaultInjector>) {
        let injector = Arc::new(FaultInjector::new(seed));
        if pad_us > 0 {
            // Zero jitter: the pad is a stand-in for deterministic
            // model-inference cost, not for noise.
            injector.set_latency_pad(pad_us, 0);
        }
        let config = ServeConfig {
            fault: Some(injector.clone()),
            ..self.serve_config.clone()
        };
        let reloader = Reloader::new(
            self.dataset.clone(),
            self.split.clone(),
            ModelConfig::test_small(),
            &self.ckpt,
        );
        let model = reloader.load().expect("load ckpt");
        let engine = Engine::new(self.dataset.clone(), model, Some(reloader), &config);
        let server = Server::start(engine, &config).expect("start replica");
        (server, injector)
    }

    fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").local_addr()
    }

    fn kill(&mut self, id: usize) {
        if let Some(server) = self.servers[id].take() {
            server.shutdown();
        }
    }

    fn rejoin(&mut self, id: usize, pad_us: u64) {
        let (server, injector) = self.boot_replica(1000 + id as u64, pad_us);
        let addr = server.local_addr();
        self.servers[id] = Some(server);
        self.injectors[id] = injector;
        self.fleet.update_addr(ReplicaId(id as u16), addr);
        assert!(self.fleet.probe(ReplicaId(id as u16)), "rejoin probe");
    }

    fn probe_down(&self) {
        for _ in 0..DOWN_AFTER {
            self.fleet.probe_all();
        }
    }

    /// Every dataset user statically owned by replica `id`.
    fn users_owned_by(&self, id: usize) -> Vec<u32> {
        let total = self.dataset.num_users() as u32;
        (0..total)
            .filter(|u| self.fleet.static_owner(RouteKey::User(*u)) == Some(ReplicaId(id as u16)))
            .collect()
    }

    fn wait_for_depth(&self, id: usize, depth: usize) {
        let server = self.servers[id].as_ref().expect("replica alive");
        let metrics = server.engine().metrics();
        let deadline = Instant::now() + Duration::from_secs(20);
        while metrics.queue_depth.load(Ordering::Relaxed) != depth as u64 {
            assert!(
                Instant::now() < deadline,
                "replica {id} queue never reached {depth}"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn shutdown(mut self) {
        for slot in &mut self.servers {
            if let Some(server) = slot.take() {
                server.shutdown();
            }
        }
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
    }
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        vnodes: 128,
        partition: PartitionMode::ByUser,
        breaker: BreakerConfig {
            failure_threshold: BREAKER_THRESHOLD,
            // Recovery is probe- and harness-driven, never clock-driven,
            // so the chaos signatures cannot race the cooldown.
            cooldown: Duration::from_secs(3600),
        },
        down_after: DOWN_AFTER,
        probe_timeout: Duration::from_millis(500),
    }
}

// ---------------------------------------------------------------------
// Scaling
// ---------------------------------------------------------------------

/// One fleet size's measured throughput.
#[derive(Debug, Clone)]
pub struct FleetScalePoint {
    /// Fleet size.
    pub replicas: usize,
    /// Concurrent client connections (per shard × shards).
    pub clients: usize,
    /// Total requests issued.
    pub requests: usize,
    /// Responses that were not `200`.
    pub errors: usize,
    /// Wall-clock, ms.
    pub wall_ms: f64,
    /// Requests per second through the router.
    pub throughput_rps: f64,
    /// Throughput over the 1-replica point.
    pub speedup: f64,
}

json_object_impl!(FleetScalePoint {
    replicas,
    clients,
    requests,
    errors,
    wall_ms,
    throughput_rps,
    speedup,
});

/// Drives `clients_per_shard` keep-alive connections per shard, each
/// walking its shard's own user population, and measures fleet-wide
/// throughput through the router.
fn run_scale_point(
    fx: &FleetFixture,
    replicas: usize,
    clients_per_shard: usize,
    requests_per_client: usize,
    pad_us: u64,
) -> FleetScalePoint {
    let serve_config = ServeConfig {
        batch: BatchConfig {
            window: Duration::ZERO,
            // One forward pass (= one latency pad) per request: the pad
            // serialises each replica, so the fleet is N pipelines.
            max_batch: 1,
            ..BatchConfig::default()
        },
        cache_capacity: 0,
        workers: clients_per_shard * 2 + 2,
        ..ServeConfig::default()
    };
    let harness = FleetHarness::start(fx, replicas, serve_config, pad_us);
    let addr = harness.router_addr();
    let target_city = fx.split.target_city.0;

    let mut handles = Vec::new();
    let start = Instant::now();
    for shard in 0..replicas {
        let users = Arc::new(harness.users_owned_by(shard));
        assert!(!users.is_empty(), "shard {shard} owns no users");
        for t in 0..clients_per_shard {
            let users = users.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect router");
                let mut errors = 0usize;
                for i in 0..requests_per_client {
                    let user = users[(t * 31 + i * 7) % users.len()];
                    let resp = client
                        .get(&format!("/recommend?user={user}&city={target_city}&k=10"))
                        .expect("request");
                    if resp.status != 200 {
                        errors += 1;
                    }
                }
                errors
            }));
        }
    }
    let errors: usize = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    let wall = start.elapsed();
    harness.shutdown();

    let clients = clients_per_shard * replicas;
    let requests = clients * requests_per_client;
    FleetScalePoint {
        replicas,
        clients,
        requests,
        errors,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        speedup: 0.0, // filled in once the 1-replica point exists
    }
}

// ---------------------------------------------------------------------
// Zero-loss rolling reload
// ---------------------------------------------------------------------

/// Outcome of the rolling-reload-under-load scenario.
#[derive(Debug, Clone)]
pub struct RolloutLossResult {
    /// Fleet size.
    pub replicas: usize,
    /// Requests submitted while the rollout ran.
    pub requests: usize,
    /// `200` responses.
    pub ok_200: usize,
    /// Anything else (each one is a lost request).
    pub non_200: usize,
    /// The rollout endpoint reported every shard upgraded and verified.
    pub rollout_completed: bool,
    /// The router's own request ledger matches the client tallies.
    pub ledger_consistent: bool,
    /// `non_200 == 0 && rollout_completed`.
    pub zero_loss: bool,
}

json_object_impl!(RolloutLossResult {
    replicas,
    requests,
    ok_200,
    non_200,
    rollout_completed,
    ledger_consistent,
    zero_loss,
});

fn run_rollout_loss(
    fx: &mut FleetFixture,
    replicas: usize,
    clients_per_shard: usize,
    pad_us: u64,
) -> RolloutLossResult {
    let serve_config = ServeConfig {
        batch: BatchConfig {
            window: Duration::ZERO,
            max_batch: 1,
            ..BatchConfig::default()
        },
        cache_capacity: 0,
        workers: clients_per_shard * 2 + 2,
        ..ServeConfig::default()
    };
    let harness = FleetHarness::start(fx, replicas, serve_config, pad_us);
    let addr = harness.router_addr();
    let target_city = fx.split.target_city.0;

    // Publish the next generation for the rollout to pick up.
    fx.oracle.train_epoch(&fx.dataset);
    st_tensor::save_params_atomic(fx.oracle.params(), &fx.ckpt).expect("resave ckpt");

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for shard in 0..replicas {
        let users = Arc::new(harness.users_owned_by(shard));
        assert!(!users.is_empty(), "shard {shard} owns no users");
        for t in 0..clients_per_shard {
            let users = users.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect router");
                let (mut ok, mut bad) = (0usize, 0usize);
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let user = users[(t * 31 + i * 7) % users.len()];
                    i += 1;
                    let resp = client
                        .get(&format!("/recommend?user={user}&city={target_city}&k=10"))
                        .expect("request");
                    if resp.status == 200 {
                        ok += 1;
                    } else {
                        bad += 1;
                    }
                }
                (ok, bad)
            }));
        }
    }

    // Let traffic establish, roll the fleet, let traffic settle.
    std::thread::sleep(Duration::from_millis(150));
    let mut admin = HttpClient::connect(addr).expect("connect admin");
    let resp = admin.post("/admin/reload?format=f32").expect("rollout rpc");
    let rollout_completed = resp.status == 200 && resp.body.contains("\"completed\":true");
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Release);

    let (mut ok_200, mut non_200) = (0usize, 0usize);
    for handle in handles {
        let (ok, bad) = handle.join().expect("client thread");
        ok_200 += ok;
        non_200 += bad;
    }
    let requests = ok_200 + non_200;

    // The router's ledger must agree: every submitted request forwarded,
    // none shed.
    let metrics = admin.get("/metrics").expect("metrics");
    let scrape = |name: &str| -> Option<u64> {
        metrics
            .body
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
    };
    let ledger_consistent = scrape("st_router_recommend_requests_total ") == Some(requests as u64)
        && scrape("st_router_forwarded_total ") == Some(requests as u64)
        && scrape("st_router_rollouts_completed_total ") == Some(1);
    harness.shutdown();

    RolloutLossResult {
        replicas,
        requests,
        ok_200,
        non_200,
        rollout_completed,
        ledger_consistent,
        zero_loss: non_200 == 0 && rollout_completed,
    }
}

// ---------------------------------------------------------------------
// Fleet chaos
// ---------------------------------------------------------------------

/// The count signature of one chaos pass. Two passes under the same
/// seed must produce bit-identical values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetCounts {
    /// Requests submitted across all phases.
    pub submitted: usize,
    /// `200`s served by the user's own shard.
    pub served: usize,
    /// `200`s served by a ring successor while the owner was down.
    pub served_remapped: usize,
    /// `503`s from fresh-connect failures before the breaker opened.
    pub unreachable_503: usize,
    /// Fast `503`s while a breaker was open.
    pub dark_503: usize,
    /// Relayed backend `503`s from deadline expiry in hang phases
    /// (deliberate sheds: breaker-exempt).
    pub expired_503: usize,
    /// Relayed backend `500`s from forced scorer failures (unexpected
    /// 5xx: these are what trip the breaker in hang phases).
    pub failed_500: usize,
    /// Breaker open transitions observed.
    pub breaker_opened: usize,
    /// Breakers closed again via half-open probes.
    pub breaker_closed: usize,
    /// Rolling reloads driven to completion.
    pub rollouts_completed: usize,
}

json_object_impl!(FleetCounts {
    submitted,
    served,
    served_remapped,
    unreachable_503,
    dark_503,
    expired_503,
    failed_500,
    breaker_opened,
    breaker_closed,
    rollouts_completed,
});

/// Report of the two-pass chaos replay.
#[derive(Debug, Clone)]
pub struct FleetChaosReport {
    /// Seed the plan was expanded from.
    pub seed: u64,
    /// Fleet size.
    pub replicas: usize,
    /// Phases executed per pass.
    pub phases: usize,
    /// First pass's count signature.
    pub counts: FleetCounts,
    /// `submitted = served + served_remapped + every shed/error class`.
    pub conservation_ok: bool,
    /// Router metrics agree with the client-side tallies.
    pub metrics_consistent: bool,
    /// Both passes produced identical signatures.
    pub reproducible: bool,
}

json_object_impl!(FleetChaosReport {
    seed,
    replicas,
    phases,
    counts,
    conservation_ok,
    metrics_consistent,
    reproducible,
});

impl FleetChaosReport {
    /// Every chaos invariant held.
    pub fn ok(&self) -> bool {
        self.conservation_ok && self.metrics_consistent && self.reproducible
    }
}

/// Executes one full pass of `plan` against a fresh fleet.
struct ChaosDriver {
    harness: FleetHarness,
    client: HttpClient,
    target_city: u16,
    /// Per-shard owned users and a rotating cursor, so request targets
    /// are a pure function of the phase sequence.
    shard_users: Vec<Vec<u32>>,
    cursors: Vec<usize>,
    counts: FleetCounts,
    unexpected: Vec<String>,
}

impl ChaosDriver {
    fn new(fx: &FleetFixture, replicas: usize) -> Self {
        let serve_config = ServeConfig {
            batch: BatchConfig {
                queue_capacity: QUEUE_CAPACITY,
                deadline: DEADLINE,
                ..BatchConfig::default()
            },
            cache_capacity: 0,
            workers: QUEUE_CAPACITY + 2,
            ..ServeConfig::default()
        };
        let harness = FleetHarness::start(fx, replicas, serve_config, 0);
        let client = HttpClient::connect(harness.router_addr()).expect("connect router");
        let shard_users: Vec<Vec<u32>> = (0..replicas)
            .map(|r| {
                let users = harness.users_owned_by(r);
                assert!(!users.is_empty(), "shard {r} owns no users");
                users
            })
            .collect();
        Self {
            harness,
            client,
            target_city: fx.split.target_city.0,
            cursors: vec![0; replicas],
            shard_users,
            counts: FleetCounts::default(),
            unexpected: Vec::new(),
        }
    }

    fn next_user(&mut self, shard: usize) -> u32 {
        let users = &self.shard_users[shard];
        let user = users[self.cursors[shard] % users.len()];
        self.cursors[shard] += 1;
        user
    }

    fn get(&mut self, user: u32) -> st_serve::client::HttpResponse {
        self.counts.submitted += 1;
        self.client
            .get(&format!(
                "/recommend?user={user}&city={}&k=10",
                self.target_city
            ))
            .expect("request resolves")
    }

    fn expect(&mut self, what: &str, ok: bool, detail: String) {
        if !ok {
            self.unexpected.push(format!("{what}: {detail}"));
        }
    }

    fn run_phase(&mut self, phase: &FleetChaosPhase) {
        match *phase {
            FleetChaosPhase::Normal { per_shard } => {
                for shard in 0..self.shard_users.len() {
                    for _ in 0..per_shard {
                        let user = self.next_user(shard);
                        let resp = self.get(user);
                        let routed = resp.header("x-router-replica").map(str::to_owned);
                        self.expect(
                            "normal",
                            resp.status == 200 && routed.as_deref() == Some(&shard.to_string()),
                            format!("user {user}: {} via {routed:?}", resp.status),
                        );
                        self.counts.served += 1;
                    }
                }
            }
            FleetChaosPhase::ReplicaOutage {
                victim,
                while_dark,
                remapped,
                after,
            } => {
                let victim = victim as usize;
                self.harness.kill(victim);
                // Fresh-connect failures until the breaker opens, then
                // fast dark-shard rejects; the split is fixed by the
                // breaker threshold.
                for i in 0..while_dark {
                    let user = self.next_user(victim);
                    let resp = self.get(user);
                    let expect_unreachable = i < BREAKER_THRESHOLD as usize;
                    let want = if expect_unreachable {
                        "unreachable"
                    } else {
                        "dark"
                    };
                    self.expect(
                        "outage dark window",
                        resp.status == 503 && resp.body.contains(want),
                        format!("request {i}: {} {}", resp.status, resp.body),
                    );
                    if expect_unreachable {
                        self.counts.unreachable_503 += 1;
                    } else {
                        self.counts.dark_503 += 1;
                    }
                }
                let open = self
                    .harness
                    .fleet
                    .replica(ReplicaId(victim as u16))
                    .breaker
                    .state()
                    == BreakerState::Open;
                self.expect("outage breaker", open, "breaker not open".into());
                self.counts.breaker_opened += 1;
                // Probes mark the corpse down; its keys remap.
                self.harness.probe_down();
                for _ in 0..remapped {
                    let user = self.next_user(victim);
                    let resp = self.get(user);
                    let routed = resp.header("x-router-replica").map(str::to_owned);
                    self.expect(
                        "outage remap",
                        resp.status == 200 && routed.as_deref() != Some(&victim.to_string()),
                        format!("user {user}: {} via {routed:?}", resp.status),
                    );
                    self.counts.served_remapped += 1;
                }
                // Rejoin on a fresh port: probe restores health and
                // resets the breaker; traffic returns home.
                self.harness.rejoin(victim, 0);
                self.counts.breaker_closed += 1;
                for _ in 0..after {
                    let user = self.next_user(victim);
                    let resp = self.get(user);
                    let routed = resp.header("x-router-replica").map(str::to_owned);
                    self.expect(
                        "outage rejoin",
                        resp.status == 200 && routed.as_deref() == Some(&victim.to_string()),
                        format!("user {user}: {} via {routed:?}", resp.status),
                    );
                    self.counts.served += 1;
                }
            }
            FleetChaosPhase::HangBreaker { victim, hung, dark } => {
                let victim = victim as usize;
                self.harness.injectors[victim].freeze();
                // Park `hung` requests in the frozen queue from parallel
                // connections, hold the freeze past the deadline, thaw:
                // every parked request comes back a relayed 503 shed
                // (deadline-exceeded + Retry-After).
                let addr = self.harness.router_addr();
                let city = self.target_city;
                let users: Vec<u32> = (0..hung).map(|_| self.next_user(victim)).collect();
                self.counts.submitted += hung;
                let sheds: Vec<(u16, bool)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = users
                        .iter()
                        .map(|&user| {
                            scope.spawn(move || {
                                let mut c = HttpClient::connect(addr).expect("connect");
                                let resp = c
                                    .get(&format!("/recommend?user={user}&city={city}&k=10"))
                                    .expect("parked request resolves");
                                (resp.status, resp.header("retry-after").is_some())
                            })
                        })
                        .collect();
                    self.harness.wait_for_depth(victim, hung);
                    std::thread::sleep(DEADLINE + DEADLINE);
                    self.harness.injectors[victim].thaw();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for (i, (status, retry_after)) in sheds.iter().enumerate() {
                    self.expect(
                        "hang expiry",
                        *status == 503 && *retry_after,
                        format!("parked request {i}: {status} retry-after={retry_after}"),
                    );
                    self.counts.expired_503 += 1;
                }
                // Deliberate sheds are breaker-exempt: `hung` consecutive
                // overload 503s (≥ threshold) must leave the shard lit.
                {
                    let breaker = &self.harness.fleet.replica(ReplicaId(victim as u16)).breaker;
                    self.expect(
                        "hang sheds breaker-exempt",
                        breaker.state() == BreakerState::Closed,
                        format!("state {}", breaker.state()),
                    );
                }
                // Now trip the breaker with *unexpected* 5xx: force the
                // next `threshold` batches to fail their scorer; each
                // request comes back a relayed 500.
                self.harness.injectors[victim].fail_next_batches(BREAKER_THRESHOLD as u64);
                for i in 0..BREAKER_THRESHOLD as usize {
                    let user = self.next_user(victim);
                    let resp = self.get(user);
                    self.expect(
                        "hang scorer failure",
                        resp.status == 500 && resp.body.contains("scorer failed"),
                        format!("request {i}: {} {}", resp.status, resp.body),
                    );
                    self.counts.failed_500 += 1;
                }
                let breaker = &self.harness.fleet.replica(ReplicaId(victim as u16)).breaker;
                self.expect(
                    "hang breaker open",
                    breaker.state() == BreakerState::Open,
                    format!("state {}", breaker.state()),
                );
                self.counts.breaker_opened += 1;
                for i in 0..dark {
                    let user = self.next_user(victim);
                    let resp = self.get(user);
                    self.expect(
                        "hang dark",
                        resp.status == 503 && resp.body.contains("dark"),
                        format!("request {i}: {} {}", resp.status, resp.body),
                    );
                    self.counts.dark_503 += 1;
                }
                // Half-open: exactly one probe request is admitted; the
                // thawed replica answers and the breaker closes.
                self.harness
                    .fleet
                    .replica(ReplicaId(victim as u16))
                    .breaker
                    .force_half_open();
                let user = self.next_user(victim);
                let resp = self.get(user);
                let breaker = &self.harness.fleet.replica(ReplicaId(victim as u16)).breaker;
                self.expect(
                    "hang recovery",
                    resp.status == 200 && breaker.state() == BreakerState::Closed,
                    format!("{} then {}", resp.status, breaker.state()),
                );
                self.counts.served += 1;
                self.counts.breaker_closed += 1;
            }
            FleetChaosPhase::RollingReload { per_shard } => {
                // Roll the checkpoint across the fleet shard by shard
                // (reloading the same file still bumps each replica's
                // epoch), interleaving traffic between steps.
                let fleet = self.harness.fleet.clone();
                let mut driver = RolloutDriver::new(&fleet, RolloutConfig::default());
                loop {
                    match driver.step() {
                        RolloutStep::Upgraded { .. } => {
                            for shard in 0..self.shard_users.len() {
                                for _ in 0..per_shard {
                                    let user = self.next_user(shard);
                                    let resp = self.get(user);
                                    self.expect(
                                        "rollout traffic",
                                        resp.status == 200,
                                        format!("user {user}: {}", resp.status),
                                    );
                                    self.counts.served += 1;
                                }
                            }
                        }
                        RolloutStep::Done => break,
                        RolloutStep::Paused { replica, reason } => {
                            self.expect(
                                "rollout pause",
                                false,
                                format!("unexpected pause at {replica}: {reason}"),
                            );
                            driver.abort();
                            break;
                        }
                    }
                }
                self.counts.rollouts_completed += 1;
            }
        }
    }

    /// Cross-checks the router's ledger against the client tallies.
    fn metrics_consistent(&mut self) -> bool {
        let metrics = self.client.get("/metrics").expect("metrics");
        let scrape = |name: &str| -> Option<u64> {
            metrics
                .body
                .lines()
                .find_map(|l| l.strip_prefix(name))
                .and_then(|v| v.trim().parse().ok())
        };
        let c = &self.counts;
        scrape("st_router_recommend_requests_total ") == Some(c.submitted as u64)
            && scrape("st_router_forwarded_total ")
                == Some((c.served + c.served_remapped + c.expired_503 + c.failed_500) as u64)
            && scrape("st_router_forward_errors_total ") == Some(c.unreachable_503 as u64)
            && scrape("st_router_dark_shard_503_total ") == Some(c.dark_503 as u64)
            && scrape("st_router_epoch_pin_503_total ") == Some(0)
            && scrape("st_router_remapped_total ") == Some(c.served_remapped as u64)
    }
}

fn run_chaos_pass(fx: &FleetFixture, plan: &FleetFaultPlan) -> (FleetCounts, bool, Vec<String>) {
    let mut driver = ChaosDriver::new(fx, plan.replicas as usize);
    for phase in &plan.phases {
        driver.run_phase(phase);
    }
    let metrics_ok = driver.metrics_consistent();
    let ChaosDriver {
        harness,
        counts,
        unexpected,
        ..
    } = driver;
    harness.shutdown();
    (counts, metrics_ok, unexpected)
}

/// Full fleet suite: scaling at N = 1/2/4, zero-loss rolling reload,
/// and the two-pass chaos replay.
pub fn run_fleet_suite(
    clients_per_shard: usize,
    requests_per_client: usize,
    pad_us: u64,
    seed: u64,
    extra_phases: usize,
) -> FleetBenchReport {
    let mut fx = build_fixture("suite");

    let mut scaling = Vec::new();
    for &n in &[1usize, 2, 4] {
        let mut point = run_scale_point(&fx, n, clients_per_shard, requests_per_client, pad_us);
        if let Some(base) = scaling.first() {
            let base: &FleetScalePoint = base;
            point.speedup = point.throughput_rps / base.throughput_rps;
        } else {
            point.speedup = 1.0;
        }
        scaling.push(point);
    }

    let rollout = run_rollout_loss(&mut fx, 2, clients_per_shard, pad_us.min(1000));

    let plan = FleetFaultPlan::from_seed(seed, 3, BREAKER_THRESHOLD, QUEUE_CAPACITY, extra_phases);
    let (counts_a, metrics_a, unexpected_a) = run_chaos_pass(&fx, &plan);
    let (counts_b, metrics_b, unexpected_b) = run_chaos_pass(&fx, &plan);
    for line in unexpected_a.iter().chain(&unexpected_b) {
        eprintln!("  chaos unexpected: {line}");
    }
    let c = &counts_a;
    let conservation_ok = c.submitted
        == c.served
            + c.served_remapped
            + c.unreachable_503
            + c.dark_503
            + c.expired_503
            + c.failed_500;
    let chaos = FleetChaosReport {
        seed,
        replicas: plan.replicas as usize,
        phases: plan.phases.len(),
        counts: counts_a.clone(),
        conservation_ok,
        metrics_consistent: metrics_a
            && metrics_b
            && unexpected_a.is_empty()
            && unexpected_b.is_empty(),
        reproducible: counts_a == counts_b,
    };

    let speedup_2 = scaling[1].speedup;
    let speedup_4 = scaling[2].speedup;
    let acceptance = FleetAcceptance {
        speedup_2,
        speedup_4,
        zero_loss_rollout: rollout.zero_loss && rollout.ledger_consistent,
        chaos_ok: chaos.ok(),
        all_gates: speedup_2 >= 1.7
            && speedup_4 >= 3.0
            && rollout.zero_loss
            && rollout.ledger_consistent
            && chaos.ok()
            && scaling.iter().all(|p| p.errors == 0),
    };

    FleetBenchReport {
        schema: "st-loadgen/fleet/v1".into(),
        pr: "PR10".into(),
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pad_us,
        clients_per_shard,
        requests_per_client,
        scaling,
        rollout,
        chaos,
        acceptance,
    }
}

/// The acceptance gates the fleet suite must clear.
#[derive(Debug, Clone)]
pub struct FleetAcceptance {
    /// 2-replica throughput over 1-replica.
    pub speedup_2: f64,
    /// 4-replica throughput over 1-replica.
    pub speedup_4: f64,
    /// No request lost during the rolling reload, ledger agreed.
    pub zero_loss_rollout: bool,
    /// Chaos conservation + metrics + two-pass reproducibility.
    pub chaos_ok: bool,
    /// Every gate at once (what the binary's exit code reports).
    pub all_gates: bool,
}

json_object_impl!(FleetAcceptance {
    speedup_2,
    speedup_4,
    zero_loss_rollout,
    chaos_ok,
    all_gates,
});

/// The full fleet report written to `BENCH_PR10.json`.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host.
    pub host_threads: usize,
    /// Injector latency pad standing in for inference cost, µs.
    pub pad_us: u64,
    /// Concurrent clients per shard in the scaling runs.
    pub clients_per_shard: usize,
    /// Requests per client in the scaling runs.
    pub requests_per_client: usize,
    /// Throughput at fleet sizes 1, 2, 4.
    pub scaling: Vec<FleetScalePoint>,
    /// Rolling reload under load.
    pub rollout: RolloutLossResult,
    /// Two-pass seeded chaos replay.
    pub chaos: FleetChaosReport,
    /// Gate summary.
    pub acceptance: FleetAcceptance,
}

json_object_impl!(FleetBenchReport {
    schema,
    pr,
    host_threads,
    pad_us,
    clients_per_shard,
    requests_per_client,
    scaling,
    rollout,
    chaos,
    acceptance,
});

impl FleetBenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}
