//! Figs. 5-6 — ablation study: the full model against ST-TransRec-1
//! (no MMD), -2 (no text), and -3 (no resampling).

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_eval::{Metric, MetricReport};
use st_transrec_core::Variant;

/// One variant's result.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Display label ("ST-TransRec", "ST-TransRec-1", ...).
    pub variant: String,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(VariantResult { variant, report });

/// The paper's variant labels.
pub fn variant_label(v: Variant) -> &'static str {
    match v {
        Variant::Full => "ST-TransRec",
        Variant::NoMmd => "ST-TransRec-1",
        Variant::NoText => "ST-TransRec-2",
        Variant::NoResample => "ST-TransRec-3",
    }
}

/// Trains all four variants with otherwise identical hyperparameters
/// ("the hyparameters are set the same to ST-TransRec").
pub fn run(loaded: &Loaded) -> Vec<VariantResult> {
    [
        Variant::Full,
        Variant::NoMmd,
        Variant::NoText,
        Variant::NoResample,
    ]
    .into_iter()
    .map(|v| {
        eprintln!(
            "[fig5/6] training {} on {}...",
            variant_label(v),
            loaded.kind.name()
        );
        let config = loaded.model_config.clone().with_variant(v);
        VariantResult {
            variant: variant_label(v).to_string(),
            report: train_and_eval(loaded, config),
        }
    })
    .collect()
}

/// NDCG@10 improvements of the full model over each variant
/// (Sec. 4.2.2 quotes 3.35 / 1.78 / 1.82 percent on Foursquare).
pub fn ndcg10_improvements(results: &[VariantResult]) -> Vec<(String, f64)> {
    let full = results[0].report.get(Metric::Ndcg, 10);
    results[1..]
        .iter()
        .map(|r| {
            let theirs = r.report.get(Metric::Ndcg, 10);
            (
                r.variant.clone(),
                if theirs > 0.0 {
                    (full - theirs) / theirs * 100.0
                } else {
                    f64::INFINITY
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn all_four_variants_run() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].variant, "ST-TransRec");
        let imps = ndcg10_improvements(&results);
        assert_eq!(imps.len(), 3);
    }
}
