//! Table 2 — per-epoch training time with 1 vs 2 data-parallel workers.
//!
//! The paper's numbers (94.29s vs 50.74s on Foursquare, 275.44s vs
//! 153.73s on Yelp) show ~1.8-1.9x scaling from synchronous two-way data
//! parallelism; the thread-based trainer reproduces that shape.

use crate::runner::Loaded;

use st_transrec_core::{ParallelTrainer, STTransRec};

/// Timing for one dataset.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Seconds per epoch with a single worker.
    pub single_worker_s: f64,
    /// Seconds per epoch with two workers.
    pub two_worker_s: f64,
    /// Paper's single-GPU seconds.
    pub paper_single_s: f64,
    /// Paper's two-GPU seconds.
    pub paper_multi_s: f64,
}

crate::json_object_impl!(Table2Row {
    dataset,
    single_worker_s,
    two_worker_s,
    paper_single_s,
    paper_multi_s,
});

impl Table2Row {
    /// Measured speedup factor.
    pub fn speedup(&self) -> f64 {
        self.single_worker_s / self.two_worker_s
    }
}

/// The paper's reference timings.
pub fn paper_reference(kind: crate::DatasetKind) -> (f64, f64) {
    match kind {
        crate::DatasetKind::Foursquare => (94.29, 50.74),
        crate::DatasetKind::Yelp => (275.44, 153.73),
    }
}

/// Times `epochs_to_time` epochs under each worker count and averages.
pub fn run(loaded: &Loaded, epochs_to_time: usize) -> Table2Row {
    let time_with = |workers: usize| -> f64 {
        let mut model =
            STTransRec::new(&loaded.dataset, &loaded.split, loaded.model_config.clone());
        let mut trainer = ParallelTrainer::new(workers);
        // One warm-up epoch (allocator, caches), then timed epochs.
        trainer.train_epoch(&mut model, &loaded.dataset);
        let mut total = 0.0;
        for _ in 0..epochs_to_time {
            total += trainer
                .train_epoch(&mut model, &loaded.dataset)
                .wall
                .as_secs_f64();
        }
        total / epochs_to_time as f64
    };
    eprintln!("[table2] timing 1 worker on {}...", loaded.kind.name());
    let single = time_with(1);
    eprintln!("[table2] timing 2 workers on {}...", loaded.kind.name());
    let double = time_with(2);
    let (paper_single, paper_multi) = paper_reference(loaded.kind);
    Table2Row {
        dataset: loaded.kind.name().to_string(),
        single_worker_s: single,
        two_worker_s: double,
        paper_single_s: paper_single,
        paper_multi_s: paper_multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn timing_harness_produces_positive_times() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let row = run(&loaded, 1);
        assert!(row.single_worker_s > 0.0);
        assert!(row.two_worker_s > 0.0);
        assert!(row.speedup() > 0.1, "speedup {}", row.speedup());
    }
}
