//! Table 1 — statistics of the datasets.
//!
//! Generated at scale 1.0 by default so the numbers line up with the
//! paper's (the generator is calibrated to them); honours `ST_SCALE` if
//! the caller passes the environment scale explicitly.

use crate::runner::{load_at, DatasetKind};

use st_data::DatasetStats;

/// Paper-reported reference values for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// #Users row.
    pub users: usize,
    /// #POIs row.
    pub pois: usize,
    /// #Words row.
    pub words: usize,
    /// #Check-ins row.
    pub checkins: usize,
    /// Crossing-city #Users row.
    pub crossing_users: usize,
    /// Crossing-city #Check-ins row.
    pub crossing_checkins: usize,
}

crate::json_object_impl!(PaperStats {
    users,
    pois,
    words,
    checkins,
    crossing_users,
    crossing_checkins,
});

/// Table 1's published numbers.
pub fn paper_reference(kind: DatasetKind) -> PaperStats {
    match kind {
        DatasetKind::Foursquare => PaperStats {
            users: 3_600,
            pois: 31_784,
            words: 3_619,
            checkins: 191_515,
            crossing_users: 732,
            crossing_checkins: 3_520,
        },
        DatasetKind::Yelp => PaperStats {
            users: 9_805,
            pois: 6_910,
            words: 1_648,
            checkins: 433_305,
            crossing_users: 983,
            crossing_checkins: 6_137,
        },
    }
}

/// One dataset's measured-vs-paper rows.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Our generated statistics.
    pub measured: DatasetStats,
    /// The paper's statistics.
    pub paper: PaperStats,
}

crate::json_object_impl!(Table1Row {
    dataset,
    measured,
    paper,
});

/// Generates both datasets at `scale` and collects Table 1.
pub fn run(scale: f64) -> Vec<Table1Row> {
    [DatasetKind::Foursquare, DatasetKind::Yelp]
        .into_iter()
        .map(|kind| {
            let loaded = load_at(kind, scale);
            let measured = DatasetStats::compute(&loaded.dataset, loaded.split.target_city);
            Table1Row {
                dataset: kind.name().to_string(),
                measured,
                paper: paper_reference(kind),
            }
        })
        .collect()
}

/// Renders the table with paper reference columns.
pub fn render(rows: &[Table1Row], scale: f64) -> String {
    let mut out = format!("== Table 1: Statistics of Datasets (scale {scale}) ==\n");
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}\n",
        "", "measured", "paper", "measured", "paper"
    ));
    let (a, b) = (&rows[0], &rows[1]);
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}\n",
        "", a.dataset, a.dataset, b.dataset, b.dataset
    ));
    let mut row = |label: &str, ma: usize, pa: usize, mb: usize, pb: usize| {
        out.push_str(&format!("{label:<22}{ma:>12}{pa:>12}{mb:>12}{pb:>12}\n"));
    };
    row(
        "#Users",
        a.measured.users,
        a.paper.users,
        b.measured.users,
        b.paper.users,
    );
    row(
        "#POIs",
        a.measured.pois,
        a.paper.pois,
        b.measured.pois,
        b.paper.pois,
    );
    row(
        "#Words",
        a.measured.words,
        a.paper.words,
        b.measured.words,
        b.paper.words,
    );
    row(
        "#Check-ins",
        a.measured.checkins,
        a.paper.checkins,
        b.measured.checkins,
        b.paper.checkins,
    );
    row(
        "#Crossing users",
        a.measured.crossing_users,
        a.paper.crossing_users,
        b.measured.crossing_users,
        b.paper.crossing_users,
    );
    row(
        "#Crossing check-ins",
        a.measured.crossing_checkins,
        a.paper.crossing_checkins,
        b.measured.crossing_checkins,
        b.paper.crossing_checkins,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_preserves_ratios() {
        let rows = run(0.02);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            let measured_per_user = r.measured.checkins as f64 / r.measured.users as f64;
            let paper_per_user = r.paper.checkins as f64 / r.paper.users as f64;
            assert!(
                (measured_per_user / paper_per_user - 1.0).abs() < 0.5,
                "{}: {measured_per_user} vs {paper_per_user}",
                r.dataset
            );
        }
        let text = render(&rows, 0.02);
        assert!(text.contains("#Crossing check-ins"));
    }
}
