//! Figs. 7-8 — sensitivity to the resampling rate `alpha`, swept over
//! [0.06, 0.15] with metrics at k = 2, 6, 10. The paper finds interior
//! optima at 0.10 (Foursquare) and 0.11 (Yelp).

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_eval::MetricReport;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct AlphaResult {
    /// The punishment rate trained with.
    pub alpha: f64,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(AlphaResult { alpha, report });

/// The paper's sweep grid.
pub fn paper_grid() -> Vec<f64> {
    (6..=15).map(|i| i as f64 / 100.0).collect()
}

/// Trains one model per alpha on the grid.
pub fn run(loaded: &Loaded, grid: &[f64]) -> Vec<AlphaResult> {
    grid.iter()
        .map(|&alpha| {
            eprintln!("[fig7/8] alpha = {alpha:.2} on {}...", loaded.kind.name());
            let mut config = loaded.model_config.clone();
            config.alpha = alpha;
            AlphaResult {
                alpha,
                report: train_and_eval(loaded, config),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn grid_matches_paper_range() {
        let g = paper_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.06).abs() < 1e-12);
        assert!((g[9] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn sweep_runs_on_micro_grid() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded, &[0.0, 0.10]);
        assert_eq!(results.len(), 2);
        assert!(results[0].report.users > 0);
    }
}
