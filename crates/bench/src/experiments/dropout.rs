//! Fig. 9 — sensitivity to the dropout rate, swept over [0, 0.5] with
//! metrics at k = 10. The paper finds optima at 0.1 (Foursquare) and
//! 0.2 (Yelp), with degradation beyond.

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_eval::MetricReport;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct DropoutResult {
    /// Dropout rate trained with.
    pub dropout: f32,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(DropoutResult { dropout, report });

/// The paper's sweep grid: 0.0 to 0.5.
pub fn paper_grid() -> Vec<f32> {
    (0..=5).map(|i| i as f32 / 10.0).collect()
}

/// Trains one model per dropout rate.
pub fn run(loaded: &Loaded, grid: &[f32]) -> Vec<DropoutResult> {
    grid.iter()
        .map(|&dropout| {
            eprintln!("[fig9] dropout = {dropout:.1} on {}...", loaded.kind.name());
            let mut config = loaded.model_config.clone();
            config.dropout = dropout;
            DropoutResult {
                dropout,
                report: train_and_eval(loaded, config),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn grid_covers_paper_range() {
        let g = paper_grid();
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[5], 0.5);
    }

    #[test]
    fn sweep_runs_on_micro_grid() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded, &[0.0, 0.3]);
        assert_eq!(results.len(), 2);
    }
}
