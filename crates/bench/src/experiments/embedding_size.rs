//! Table 4 — recommendation performance at embedding sizes
//! {16, 32, 64, 128}, reported at k = 2 and 4. The paper's optima:
//! 64 on Foursquare (128 overfits), 128 on Yelp.

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_eval::MetricReport;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct EmbeddingResult {
    /// Embedding size trained with.
    pub dim: usize,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(EmbeddingResult { dim, report });

/// The paper's grid.
pub fn paper_grid() -> Vec<usize> {
    vec![16, 32, 64, 128]
}

/// Trains one model per embedding size (tower rescaled per the paper's
/// 2x-input rule, see `ModelConfig::with_embedding_dim`).
pub fn run(loaded: &Loaded, grid: &[usize]) -> Vec<EmbeddingResult> {
    grid.iter()
        .map(|&dim| {
            eprintln!("[table4] embedding = {dim} on {}...", loaded.kind.name());
            let config = loaded.model_config.clone().with_embedding_dim(dim);
            EmbeddingResult {
                dim,
                report: train_and_eval(loaded, config),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn sweep_runs_on_micro_grid() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded, &[8, 16]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].dim, 8);
    }
}
