//! Figs. 3-4 — performance comparison of ST-TransRec against the eight
//! baselines on both datasets, all four metrics at k = 2, 4, 6, 8, 10.

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_baselines::{fit_method, Budget, Method};
use st_eval::{evaluate, Metric, MetricReport};

/// One method's evaluated report.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Display name.
    pub method: String,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(MethodResult { method, report });

/// Runs the full comparison on a loaded dataset.
pub fn run(loaded: &Loaded, budget: Budget) -> Vec<MethodResult> {
    let mut results = Vec::with_capacity(Method::ALL.len() + 1);
    for method in Method::ALL {
        eprintln!(
            "[fig3/4] fitting {} on {}...",
            method.name(),
            loaded.kind.name()
        );
        let scorer = fit_method(
            method,
            &loaded.dataset,
            &loaded.split,
            &loaded.model_config,
            budget,
        );
        let report = evaluate(
            &*scorer,
            &loaded.dataset,
            &loaded.split,
            &crate::eval_config(),
        );
        results.push(MethodResult {
            method: method.name().to_string(),
            report,
        });
    }
    eprintln!("[fig3/4] fitting ST-TransRec on {}...", loaded.kind.name());
    let report = train_and_eval(loaded, loaded.model_config.clone());
    results.push(MethodResult {
        method: "ST-TransRec".to_string(),
        report,
    });
    results
}

/// The paper's headline check: ST-TransRec's Recall@10 relative
/// improvement over each competitor (Sec. 4.2.1 quotes these).
pub fn recall10_improvements(results: &[MethodResult]) -> Vec<(String, f64)> {
    let ours = results
        .iter()
        .find(|r| r.method == "ST-TransRec")
        .expect("ST-TransRec present")
        .report
        .get(Metric::Recall, 10);
    results
        .iter()
        .filter(|r| r.method != "ST-TransRec")
        .map(|r| {
            let theirs = r.report.get(Metric::Recall, 10);
            let imp = if theirs > 0.0 {
                (ours - theirs) / theirs * 100.0
            } else {
                f64::INFINITY
            };
            (r.method.clone(), imp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    /// End-to-end smoke at very small scale: every method runs, the
    /// harness assembles all nine rows, improvements are computable.
    #[test]
    fn comparison_assembles_all_nine_methods() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded, Budget::Quick);
        assert_eq!(results.len(), 9);
        assert!(results.iter().any(|r| r.method == "ST-TransRec"));
        let imps = recall10_improvements(&results);
        assert_eq!(imps.len(), 8);
        for (_, imp) in &imps {
            assert!(imp.is_finite());
        }
    }
}
