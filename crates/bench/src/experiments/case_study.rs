//! Table 3 — case study: the top-10 profile words of one crossing-city
//! user, with the top-5 target-city recommendations (and their words)
//! under the full model vs ST-TransRec-2 (no text).

use crate::runner::Loaded;

use st_data::UserId;
use st_transrec_core::{case_study, CaseStudy, STTransRec, Variant};

/// The two-column case study of Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// The studied user.
    pub user: u32,
    /// Top-10 source-city profile words.
    pub profile_words: Vec<String>,
    /// Full-model column: (POI name, top-5 words, is ground truth).
    pub full_model: Vec<(String, Vec<String>, bool)>,
    /// ST-TransRec-2 column.
    pub no_text: Vec<(String, Vec<String>, bool)>,
}

crate::json_object_impl!(Table3 {
    user,
    profile_words,
    full_model,
    no_text,
});

/// Picks a test user with a rich profile (most training check-ins), in
/// the spirit of the paper's user #377.
pub fn pick_user(loaded: &Loaded) -> (usize, UserId) {
    loaded
        .split
        .test_users
        .iter()
        .enumerate()
        .max_by_key(|(_, &u)| loaded.split.train.iter().filter(|c| c.user == u).count())
        .map(|(i, &u)| (i, u))
        .expect("at least one test user")
}

/// Trains the full model and the no-text ablation, then assembles the
/// two-column study for the chosen user.
pub fn run(loaded: &Loaded) -> Table3 {
    let (idx, user) = pick_user(loaded);
    let truth = loaded.split.ground_truth_for(idx);

    let column = |variant: Variant| -> CaseStudy {
        eprintln!("[table3] training {variant:?} model...");
        let config = loaded.model_config.clone().with_variant(variant);
        let mut model = STTransRec::new(&loaded.dataset, &loaded.split, config);
        model.fit(&loaded.dataset);
        case_study(
            &model,
            &loaded.dataset,
            &loaded.split.train,
            user,
            loaded.split.target_city,
            truth,
            5,
            5,
        )
    };
    let full = column(Variant::Full);
    let no_text = column(Variant::NoText);

    let flatten = |cs: &CaseStudy| {
        cs.entries
            .iter()
            .map(|e| (e.name.clone(), e.words.clone(), e.is_ground_truth))
            .collect()
    };
    Table3 {
        user: user.0,
        profile_words: full.profile_words.clone(),
        full_model: flatten(&full),
        no_text: flatten(&no_text),
    }
}

/// Renders the table in the paper's two-column layout.
pub fn render(t: &Table3) -> String {
    let mut out = format!("== Table 3: Case Study for User #{} ==\n", t.user);
    out.push_str(&format!(
        "Top-10 profile words: {}\n\n",
        t.profile_words.join(", ")
    ));
    out.push_str("-- Rank list of ST-TransRec --\n");
    for (name, words, truth) in &t.full_model {
        let mark = if *truth { " [GROUND TRUTH]" } else { "" };
        out.push_str(&format!("  {name}{mark}\n    {}\n", words.join(", ")));
    }
    out.push_str("\n-- Rank list of ST-TransRec-2 (no text) --\n");
    for (name, words, truth) in &t.no_text {
        let mark = if *truth { " [GROUND TRUTH]" } else { "" };
        out.push_str(&format!("  {name}{mark}\n    {}\n", words.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn case_study_assembles_both_columns() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let t = run(&loaded);
        assert_eq!(t.full_model.len(), 5);
        assert_eq!(t.no_text.len(), 5);
        assert!(!t.profile_words.is_empty());
        let text = render(&t);
        assert!(text.contains("ST-TransRec-2"));
    }

    #[test]
    fn picks_the_richest_test_user() {
        let loaded = load_at(DatasetKind::Yelp, 0.012);
        let (_, user) = pick_user(&loaded);
        let count = |u: UserId| loaded.split.train.iter().filter(|c| c.user == u).count();
        let max = loaded
            .split
            .test_users
            .iter()
            .map(|&u| count(u))
            .max()
            .unwrap();
        assert_eq!(count(user), max);
    }
}
