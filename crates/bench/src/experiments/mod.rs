//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Reproduces |
//! |--------|-----------|
//! | [`table1`] | Table 1 — dataset statistics |
//! | [`table2`] | Table 2 — multi-worker training time |
//! | [`comparison`] | Figs. 3-4 — nine-method comparison |
//! | [`ablation`] | Figs. 5-6 — ST-TransRec variants |
//! | [`case_study`] | Table 3 — word-level case study |
//! | [`resample_rate`] | Figs. 7-8 — alpha sweep |
//! | [`dropout`] | Fig. 9 — dropout sweep |
//! | [`embedding_size`] | Table 4 — embedding-size sweep |
//! | [`depth`] | Table 5 — tower-depth sweep |

pub mod ablation;
pub mod case_study;
pub mod comparison;
pub mod depth;
pub mod dropout;
pub mod embedding_size;
pub mod resample_rate;
pub mod table1;
pub mod table2;

use crate::runner::Loaded;
use st_eval::{evaluate, MetricReport};
use st_transrec_core::{ModelConfig, STTransRec};

/// Trains ST-TransRec under `config` on the loaded split and evaluates it
/// with the shared protocol.
pub fn train_and_eval(loaded: &Loaded, config: ModelConfig) -> MetricReport {
    let mut model = STTransRec::new(&loaded.dataset, &loaded.split, config);
    model.fit(&loaded.dataset);
    evaluate(
        &model,
        &loaded.dataset,
        &loaded.split,
        &crate::eval_config(),
    )
}
