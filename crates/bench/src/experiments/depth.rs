//! Table 5 — recommendation performance at interaction-tower depths
//! {1, 2, 3, 4}, reported at k = 2 and 4. The paper finds depth 4 best
//! on both datasets.

use crate::experiments::train_and_eval;
use crate::runner::Loaded;

use st_eval::MetricReport;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct DepthResult {
    /// Number of hidden layers.
    pub depth: usize,
    /// Averaged metrics.
    pub report: MetricReport,
}

crate::json_object_impl!(DepthResult { depth, report });

/// The paper's grid.
pub fn paper_grid() -> Vec<usize> {
    vec![1, 2, 3, 4]
}

/// Trains one model per tower depth.
pub fn run(loaded: &Loaded, grid: &[usize]) -> Vec<DepthResult> {
    grid.iter()
        .map(|&depth| {
            eprintln!("[table5] depth = {depth} on {}...", loaded.kind.name());
            let config = loaded.model_config.clone().with_depth(depth);
            DepthResult {
                depth,
                report: train_and_eval(loaded, config),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{load_at, DatasetKind};

    #[test]
    fn sweep_runs_on_micro_grid() {
        let mut loaded = load_at(DatasetKind::Yelp, 0.012);
        loaded.model_config = st_transrec_core::ModelConfig::test_small();
        let results = run(&loaded, &[1, 2]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].depth, 2);
    }
}
