//! Dependency-free JSON serialization for result dumps.
//!
//! The harness only ever *writes* JSON (results, perf trajectories), so
//! instead of pulling in a serde stack it builds a [`Json`] value tree
//! and pretty-prints it. Structs opt in with [`crate::json_object_impl!`],
//! which mirrors what `#[derive(Serialize)]` produced before.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values serialize as `null` like serde_json.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON value tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

num_to_json!(f32, f64, usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields, mirroring
/// what `#[derive(Serialize)]` used to emit:
/// `json_object_impl!(DepthResult { depth, report });`
#[macro_export]
macro_rules! json_object_impl {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
    };
}

// Result types from other workspace crates that the harness dumps.
json_object_impl!(st_eval::MetricReport { ks, values, users });
json_object_impl!(st_data::DatasetStats {
    users,
    pois,
    words,
    checkins,
    crossing_users,
    crossing_checkins,
});

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0)
    }
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Json, depth: usize) -> fmt::Result {
    match v {
        Json::Null => write!(f, "null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Num(n) => write_number(f, *n),
        Json::Str(s) => write_string(f, s),
        Json::Arr(items) if items.is_empty() => write!(f, "[]"),
        Json::Arr(items) => {
            writeln!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                indent(f, depth + 1)?;
                write_value(f, item, depth + 1)?;
                writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
            }
            indent(f, depth)?;
            write!(f, "]")
        }
        Json::Obj(fields) if fields.is_empty() => write!(f, "{{}}"),
        Json::Obj(fields) => {
            writeln!(f, "{{")?;
            for (i, (key, val)) in fields.iter().enumerate() {
                indent(f, depth + 1)?;
                write_string(f, key)?;
                write!(f, ": ")?;
                write_value(f, val, depth + 1)?;
                writeln!(f, "{}", if i + 1 < fields.len() { "," } else { "" })?;
            }
            indent(f, depth)?;
            write!(f, "}}")
        }
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        write!(f, "null")
    } else if n == n.trunc() && n.abs() < 1e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings_render() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b\nc".into()).to_string(), r#""a\"b\nc""#);
        assert_eq!(Json::Bool(true).to_string(), "true");
    }

    #[test]
    fn nested_structures_pretty_print() {
        struct Point {
            x: f64,
            label: String,
        }
        json_object_impl!(Point { x, label });
        let v = vec![Point {
            x: 1.5,
            label: "a".into(),
        }];
        let text = v.to_json().to_string();
        assert_eq!(
            text,
            "[\n  {\n    \"x\": 1.5,\n    \"label\": \"a\"\n  }\n]"
        );
    }

    #[test]
    fn tuples_and_options_render() {
        let t = ("poi".to_string(), vec!["w".to_string()], true);
        assert!(t.to_json().to_string().contains("\"poi\""));
        assert_eq!(Option::<u32>::None.to_json(), Json::Null);
    }
}
