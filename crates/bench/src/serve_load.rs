//! Serving load generator: drives a real `st-serve` server over loopback
//! TCP and measures what the micro-batcher and result cache buy.
//!
//! Three scenarios run against the same dataset, checkpoint, and client
//! schedule, so only the serving configuration differs:
//!
//! - **`one_at_a_time`** — batching off (`max_batch = 1`, zero window)
//!   and cache off: every request pays its own forward pass. This is the
//!   baseline a naive server would be.
//! - **`micro_batched`** — cache still off, but concurrent requests
//!   coalesce into one batched forward pass per window.
//! - **`micro_batched_cached`** — batching plus the LRU result cache,
//!   with clients revisiting a small working set of users so hits
//!   dominate.
//!
//! Latency percentiles are measured client-side (they include the TCP
//! round trip), throughput over the whole scenario wall-clock. Results
//! seed `BENCH_PR2.json` at the repo root.

use crate::json::{Json, ToJson};
use crate::json_object_impl;
use st_data::{synth, CityId, CrossingCitySplit, Dataset};
use st_serve::client::HttpClient;
use st_serve::server::{Engine, ServeConfig, Server};
use st_serve::snapshot::Reloader;
use st_serve::BatchConfig;
use st_transrec_core::{ModelConfig, STTransRec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One serving configuration to drive.
#[derive(Debug, Clone)]
pub struct LoadScenario {
    /// Scenario name in the report.
    pub name: String,
    /// Micro-batch coalescing window, microseconds.
    pub window_us: u64,
    /// Max requests per forward pass.
    pub max_batch: usize,
    /// LRU cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Distinct users the clients cycle through; a small set makes the
    /// cached scenario hit, a large one keeps the others honest misses.
    pub distinct_users: usize,
}

/// Measured outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests issued.
    pub requests: usize,
    /// Responses that were not `200`.
    pub errors: usize,
    /// Scenario wall-clock, ms.
    pub wall_ms: f64,
    /// Requests per second over the wall-clock.
    pub throughput_rps: f64,
    /// Median client-side latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile client-side latency, microseconds.
    pub p99_us: u64,
    /// Mean requests per forward pass (1.0 when batching is off).
    pub mean_batch_size: f64,
    /// Cache hit rate in [0, 1].
    pub cache_hit_rate: f64,
}

json_object_impl!(ScenarioResult {
    scenario,
    clients,
    requests,
    errors,
    wall_ms,
    throughput_rps,
    p50_us,
    p99_us,
    mean_batch_size,
    cache_hit_rate,
});

/// The acceptance gates the serving benchmarks must clear.
#[derive(Debug, Clone)]
pub struct ServeAcceptance {
    /// `micro_batched` throughput over `one_at_a_time` throughput.
    pub batched_throughput_gain: f64,
    /// `micro_batched_cached` throughput over `one_at_a_time`.
    pub cached_throughput_gain: f64,
    /// Every response across every scenario was `200`.
    pub all_responses_ok: bool,
}

json_object_impl!(ServeAcceptance {
    batched_throughput_gain,
    cached_throughput_gain,
    all_responses_ok,
});

/// The full serving-perf report written to `BENCH_PR2.json`.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Which PR produced the report.
    pub pr: String,
    /// Hardware threads on the benching host.
    pub host_threads: usize,
    /// Concurrent client connections per scenario.
    pub clients: usize,
    /// Requests issued per client per scenario.
    pub requests_per_client: usize,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioResult>,
    /// Acceptance summary.
    pub acceptance: ServeAcceptance,
}

json_object_impl!(ServeLoadReport {
    schema,
    pr,
    host_threads,
    clients,
    requests_per_client,
    scenarios,
    acceptance,
});

impl ServeLoadReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::to_string(&self.to_json())
    }
}

/// Dataset + trained checkpoint shared by every scenario.
struct LoadFixture {
    dataset: Arc<Dataset>,
    split: Arc<CrossingCitySplit>,
    ckpt: PathBuf,
}

fn build_fixture() -> LoadFixture {
    let cfg = synth::SynthConfig::tiny();
    let (dataset, _) = synth::generate(&cfg);
    let dataset = Arc::new(dataset);
    let split = Arc::new(CrossingCitySplit::build(
        &dataset,
        CityId(cfg.target_city as u16),
    ));
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    model.train_epoch(&dataset);
    let dir = std::env::temp_dir().join(format!("st-serve-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create loadgen scratch dir");
    let ckpt = dir.join("model.bin");
    st_tensor::save_params_atomic(model.params(), &ckpt).expect("save ckpt");
    LoadFixture {
        dataset,
        split,
        ckpt,
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one scenario: fresh server, `clients` keep-alive connections,
/// `requests_per_client` GETs each, latencies measured client-side.
fn run_scenario(
    fx: &LoadFixture,
    scenario: &LoadScenario,
    clients: usize,
    requests_per_client: usize,
) -> ScenarioResult {
    let config = ServeConfig {
        batch: BatchConfig {
            window: Duration::from_micros(scenario.window_us),
            max_batch: scenario.max_batch,
            ..BatchConfig::default()
        },
        cache_capacity: scenario.cache_capacity,
        workers: clients.max(1),
        ..ServeConfig::default()
    };
    let reloader = Reloader::new(
        fx.dataset.clone(),
        fx.split.clone(),
        ModelConfig::test_small(),
        &fx.ckpt,
    );
    let model = reloader.load().expect("load ckpt");
    let engine = Engine::new(fx.dataset.clone(), model, Some(reloader), &config);
    let server = Server::start(engine, &config).expect("start server");
    let addr = server.local_addr();
    let distinct_users = scenario.distinct_users.clamp(1, fx.dataset.num_users());
    let target_city = fx.split.target_city.0;

    let start = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for t in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let mut latencies = Vec::with_capacity(requests_per_client);
            let mut errors = 0usize;
            for i in 0..requests_per_client {
                // A fixed stride walks every client through the user set
                // in a different order, so concurrent requests in one
                // batching window mostly carry different users.
                let user = (t * 31 + i * 7) % distinct_users;
                let sent = Instant::now();
                let resp = client
                    .get(&format!("/recommend?user={user}&city={target_city}&k=10"))
                    .expect("request");
                latencies.push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                if resp.status != 200 {
                    errors += 1;
                }
            }
            (latencies, errors)
        }));
    }

    let mut latencies = Vec::with_capacity(clients * requests_per_client);
    let mut errors = 0usize;
    for handle in handles {
        let (lats, errs) = handle.join().expect("client thread");
        latencies.extend(lats);
        errors += errs;
    }
    let wall = start.elapsed();

    let metrics = server.engine().metrics();
    let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
    let batched = metrics
        .batched_requests
        .load(std::sync::atomic::Ordering::Relaxed);
    let mean_batch_size = if batches == 0 {
        0.0
    } else {
        batched as f64 / batches as f64
    };
    let cache_hit_rate = metrics.cache_hit_rate();
    server.shutdown();

    latencies.sort_unstable();
    let requests = clients * requests_per_client;
    ScenarioResult {
        scenario: scenario.name.clone(),
        clients,
        requests,
        errors,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_batch_size,
        cache_hit_rate,
    }
}

/// The fixed scenario set: serial baseline, batched, batched + cached.
pub fn default_scenarios() -> Vec<LoadScenario> {
    vec![
        LoadScenario {
            name: "one_at_a_time".into(),
            window_us: 0,
            max_batch: 1,
            cache_capacity: 0,
            distinct_users: usize::MAX,
        },
        // Zero window: the batcher never waits on a timer — batches form
        // from the backlog that accumulates while the previous batch
        // scores, which is the throughput-optimal setting when every
        // client blocks on its reply.
        LoadScenario {
            name: "micro_batched".into(),
            window_us: 0,
            max_batch: 64,
            cache_capacity: 0,
            distinct_users: usize::MAX,
        },
        LoadScenario {
            name: "micro_batched_cached".into(),
            window_us: 0,
            max_batch: 64,
            cache_capacity: 4096,
            distinct_users: 4,
        },
    ]
}

/// Runs the whole load suite and assembles the PR 2 report.
///
/// Each scenario runs `reps` times and keeps its best-throughput run —
/// the same best-of-reps convention the perf suite uses to strip
/// scheduler noise from single-process measurements. Error counts are
/// summed across reps so a failure in any run still fails acceptance.
pub fn run_load_suite(clients: usize, requests_per_client: usize, reps: usize) -> ServeLoadReport {
    let fx = build_fixture();
    let reps = reps.max(1);
    let scenarios: Vec<ScenarioResult> = default_scenarios()
        .iter()
        .map(|s| {
            let runs: Vec<ScenarioResult> = (0..reps)
                .map(|_| run_scenario(&fx, s, clients, requests_per_client))
                .collect();
            let errors: usize = runs.iter().map(|r| r.errors).sum();
            let mut best = runs
                .into_iter()
                .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
                .expect("at least one rep");
            best.errors = errors;
            best
        })
        .collect();

    let rps = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.scenario == name)
            .map(|s| s.throughput_rps)
            .unwrap_or(0.0)
    };
    let baseline = rps("one_at_a_time").max(f64::MIN_POSITIVE);
    let acceptance = ServeAcceptance {
        batched_throughput_gain: rps("micro_batched") / baseline,
        cached_throughput_gain: rps("micro_batched_cached") / baseline,
        all_responses_ok: scenarios.iter().all(|s| s.errors == 0),
    };
    ServeLoadReport {
        schema: "st-transrec-serve-perf/v1".into(),
        pr: "PR2".into(),
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        clients,
        requests_per_client,
        scenarios,
        acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_load_suite_serves_every_request() {
        let report = run_load_suite(2, 5, 1);
        assert_eq!(report.scenarios.len(), 3);
        for s in &report.scenarios {
            assert_eq!(s.errors, 0, "{}: {} errors", s.scenario, s.errors);
            assert_eq!(s.requests, 10);
            assert!(s.throughput_rps > 0.0);
            assert!(s.p50_us <= s.p99_us);
        }
        assert!(report.acceptance.all_responses_ok);
        // The cached scenario revisits 4 users 10 times: mostly hits.
        let cached = &report.scenarios[2];
        assert!(
            cached.cache_hit_rate > 0.0,
            "expected cache hits, rate {}",
            cached.cache_hit_rate
        );
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": \"st-transrec-serve-perf/v1\""));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
    }
}
