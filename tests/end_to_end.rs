//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through training to evaluation and recommendation.

use st_transrec::baselines::ItemPop;
use st_transrec::core::{recommend_top_k, ParallelTrainer};
use st_transrec::prelude::*;

fn setup() -> (Dataset, CrossingCitySplit) {
    let cfg = synth::SynthConfig::tiny();
    let (d, _) = synth::generate(&cfg);
    let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
    (d, split)
}

#[test]
fn full_pipeline_trains_evaluates_and_recommends() {
    let (dataset, split) = setup();
    let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
    let history = model.fit(&dataset);
    assert_eq!(history.len(), 3);

    let report = evaluate(&model, &dataset, &split, &EvalConfig::default());
    assert_eq!(report.users, split.test_users.len());
    let r10 = report.get(Metric::Recall, 10);
    assert!(r10 > 0.1, "trained model below chance: recall@10 = {r10}");

    // Recommendations come from the target city, sorted, and scoreable.
    let user = split.test_users[0];
    let recs = recommend_top_k(&model, &dataset, user, split.target_city, 10, &[]);
    assert_eq!(recs.len(), 10);
    assert!(recs
        .iter()
        .all(|r| dataset.poi(r.poi).city == split.target_city));
    assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn trained_model_beats_itempop() {
    // The paper's core claim in miniature: personalized transfer beats
    // popularity. The synthetic generator plants transferable taste, so
    // a trained ST-TransRec must exploit it.
    let (dataset, split) = setup();
    let mut cfg = ModelConfig::test_small();
    cfg.epochs = 6;
    let mut model = STTransRec::new(&dataset, &split, cfg);
    model.fit(&dataset);

    let eval_cfg = EvalConfig::default();
    let ours = evaluate(&model, &dataset, &split, &eval_cfg);
    let pop = ItemPop::fit(&dataset, &split.train);
    let theirs = evaluate(&pop, &dataset, &split, &eval_cfg);

    let (a, b) = (ours.get(Metric::Ndcg, 10), theirs.get(Metric::Ndcg, 10));
    assert!(
        a > b * 0.95,
        "ST-TransRec ({a:.4}) should not lose badly to ItemPop ({b:.4}) even at tiny scale"
    );
}

#[test]
fn parallel_and_sequential_training_reach_similar_loss() {
    let (dataset, split) = setup();
    let run = |workers: usize| -> f32 {
        let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
        let mut trainer = ParallelTrainer::new(workers);
        let mut last = f32::MAX;
        for _ in 0..4 {
            let e = trainer.train_epoch(&mut model, &dataset);
            last = e.stats.losses.interaction_source + e.stats.losses.interaction_target;
        }
        last
    };
    let seq = run(1);
    let par = run(2);
    assert!(
        (seq - par).abs() < 0.5 * seq.max(par),
        "parallel ({par}) and sequential ({seq}) losses diverged"
    );
}

#[test]
fn evaluation_is_reproducible_across_runs() {
    let (dataset, split) = setup();
    let run = || {
        let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
        model.fit(&dataset);
        evaluate(&model, &dataset, &split, &EvalConfig::default())
    };
    assert_eq!(run(), run(), "seeded pipeline must be bit-reproducible");
}

#[test]
fn facade_prelude_exposes_the_working_set() {
    // Compile-time guarantee that the documented prelude surface exists;
    // exercise a couple of items at runtime.
    let (dataset, split) = setup();
    let stats = DatasetStats::compute(&dataset, split.target_city);
    assert!(stats.crossing_users > 0);
    let _: Variant = Variant::Full;
    let _: MmdEstimator = MmdEstimator::Linear;
}
