//! Integration tests asserting the *paper-level* properties the
//! reproduction rests on: the structural claims of Secs. 1 and 3 must
//! hold on the synthetic data, and the model's mechanisms must engage.

use rand::{rngs::SmallRng, SeedableRng};
use st_transrec::core::{mmd_value, CityResampler};
use st_transrec::prelude::*;
use st_transrec::tensor::Matrix;

fn setup_scaled() -> (Dataset, CrossingCitySplit) {
    let cfg = synth::SynthConfig::yelp_like().with_scale(0.012);
    let (d, _) = synth::generate(&cfg);
    let split = CrossingCitySplit::build(&d, CityId(cfg.target_city as u16));
    (d, split)
}

/// Sec. 1, challenge 1: crossing-city check-ins are a tiny fraction of
/// the total (the paper quotes < 1%; our generator keeps it < 5% at all
/// scales).
#[test]
fn crossing_checkins_are_sparse() {
    let (dataset, split) = setup_scaled();
    let frac = split.held_out_checkins(&dataset) as f64 / dataset.checkins().len() as f64;
    assert!(
        (0.001..0.05).contains(&frac),
        "crossing fraction {frac} out of the paper's sparse regime"
    );
}

/// Sec. 1, challenge 3: the spatial distribution over POIs is imbalanced
/// — the densest uniformly accessible region holds disproportionately
/// many check-ins relative to its share of POIs.
#[test]
fn spatial_imbalance_exists_and_resampling_counteracts_it() {
    let (dataset, split) = setup_scaled();
    let mut rng = SmallRng::seed_from_u64(0);
    let r_raw = CityResampler::build(
        &dataset,
        &split.train,
        split.target_city,
        20,
        0.10,
        0.0,
        &mut rng,
    );
    let r_balanced = CityResampler::build(
        &dataset,
        &split.train,
        split.target_city,
        20,
        0.10,
        1.0,
        &mut rng,
    );
    assert!(
        r_raw.segmentation().num_regions() > 1,
        "city did not segment"
    );
    let densest = r_raw.densities().densest().expect("check-ins exist");

    let share = |r: &CityResampler| {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 4000;
        r.sample_batch(n, &mut rng)
            .into_iter()
            .filter(|&p| r.region_of_poi(&dataset, p) == Some(densest))
            .count() as f64
            / n as f64
    };
    let raw = share(&r_raw);
    let balanced = share(&r_balanced);
    // "Imbalanced" = the densest region draws far more than its uniform
    // share (1/num_regions). A relative bound keeps the test meaningful
    // across RNG streams, unlike a fixed absolute threshold.
    let uniform = 1.0 / r_raw.segmentation().num_regions() as f64;
    assert!(
        raw > 2.0 * uniform,
        "no density concentration to correct: {raw} vs uniform {uniform}"
    );
    assert!(
        balanced < raw,
        "alpha = 1 did not rebalance: {raw} -> {balanced}"
    );
}

/// Sec. 3.1.5: training with the MMD term reduces the measured
/// discrepancy between source and target POI embedding distributions,
/// relative to training without it.
#[test]
fn mmd_training_aligns_poi_embedding_distributions() {
    let (dataset, split) = setup_scaled();

    let embedding_mmd = |variant: Variant| -> f32 {
        let mut cfg = ModelConfig::test_small();
        cfg.epochs = 4;
        cfg.lambda = 2.0;
        let cfg = cfg.with_variant(variant);
        let mut model = STTransRec::new(&dataset, &split, cfg);
        model.fit(&dataset);
        // Measure MMD between the full source and target POI embedding
        // sets (not the training batches).
        let gather = |city_filter: &dyn Fn(CityId) -> bool| -> Matrix {
            let rows: Vec<Vec<f32>> = dataset
                .pois()
                .iter()
                .filter(|p| city_filter(p.city))
                .take(300)
                .map(|p| model.poi_embedding(p.id).to_vec())
                .collect();
            let dim = rows[0].len();
            Matrix::from_vec(rows.len(), dim, rows.concat())
        };
        let target = split.target_city;
        let src = gather(&|c| c != target);
        let tgt = gather(&|c| c == target);
        mmd_value(&src, &tgt, 1.0)
    };

    let with_mmd = embedding_mmd(Variant::Full);
    let without = embedding_mmd(Variant::NoMmd);
    assert!(
        with_mmd < without,
        "MMD training did not align embeddings: {with_mmd} (full) vs {without} (no-mmd)"
    );
}

/// Sec. 3.1.3: POI embeddings trained with context prediction place
/// same-topic POIs (shared words) closer than unrelated ones, across
/// cities — the word bridge of Fig. 1a.
#[test]
fn text_loss_builds_a_cross_city_word_bridge() {
    let (dataset, split) = setup_scaled();
    let mut cfg = ModelConfig::test_small();
    cfg.epochs = 4;
    let mut model = STTransRec::new(&dataset, &split, cfg);
    model.fit(&dataset);

    let cosine = |a: &[f32], b: &[f32]| {
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-9)
    };
    let target = split.target_city;
    let source_pois: Vec<&Poi> = dataset.pois().iter().filter(|p| p.city != target).collect();
    let target_pois: Vec<&Poi> = dataset.pois().iter().filter(|p| p.city == target).collect();

    let (mut shared_sim, mut shared_n, mut other_sim, mut other_n) = (0.0f64, 0u64, 0.0f64, 0u64);
    for s in source_pois.iter().take(150) {
        for t in target_pois.iter().take(150) {
            let sim = cosine(model.poi_embedding(s.id), model.poi_embedding(t.id)) as f64;
            if s.words.iter().any(|w| t.words.contains(w)) {
                shared_sim += sim;
                shared_n += 1;
            } else {
                other_sim += sim;
                other_n += 1;
            }
        }
    }
    let shared_avg = shared_sim / shared_n.max(1) as f64;
    let other_avg = other_sim / other_n.max(1) as f64;
    assert!(
        shared_avg > other_avg,
        "cross-city shared-word POIs not closer: {shared_avg:.4} vs {other_avg:.4}"
    );
}

/// Table 1 calibration: at full scale the generator reproduces the
/// paper's headline statistics within tight tolerances. (Kept at a
/// moderate scale here so `cargo test` stays fast; the table1_stats
/// binary checks scale 1.0.)
#[test]
fn generator_tracks_paper_ratios() {
    let (dataset, split) = setup_scaled();
    let stats = DatasetStats::compute(&dataset, split.target_city);
    let per_user = stats.checkins as f64 / stats.users as f64;
    // Yelp: 433,305 / 9,805 ~ 44.2 check-ins per user.
    assert!(
        (25.0..70.0).contains(&per_user),
        "check-ins per user {per_user} far from Yelp's 44"
    );
    let crossing_per_user = split.held_out_checkins(&dataset) as f64 / stats.crossing_users as f64;
    // Yelp: 6,137 / 983 ~ 6.2.
    assert!(
        (2.0..12.0).contains(&crossing_per_user),
        "crossing check-ins per user {crossing_per_user} far from Yelp's 6.2"
    );
}
