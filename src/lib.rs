//! # st-transrec
//!
//! A from-scratch Rust reproduction of **"A Deep Neural Network for
//! Crossing-City POI Recommendations"** (Li & Gong, TKDE'22 / ICDE'23
//! extended abstract) — the ST-TransRec model together with every
//! substrate it needs: a reverse-mode autodiff tensor library, a
//! geospatial region-clustering layer, calibrated synthetic check-in
//! datasets, eight comparison baselines, and the paper's full evaluation
//! protocol.
//!
//! This facade crate re-exports the workspace members under stable
//! module names:
//!
//! - [`tensor`] — matrices, autodiff tape, optimizers, NN layers.
//! - [`geo`] — grids, Algorithm 1 region clustering, densities.
//! - [`data`] — check-in model, context graph, synthetic generators.
//! - [`core`] — the ST-TransRec model and its components.
//! - [`baselines`] — ItemPop, LCE, CRCF, PR-UIDT, ST-LDA, CTLM, SH-CDL,
//!   PACE.
//! - [`eval`] — Recall/Precision/NDCG/MAP@k and the ranking protocol.
//!
//! ## Quickstart
//!
//! ```no_run
//! use st_transrec::prelude::*;
//!
//! // Generate a small crossing-city dataset (target = city 1).
//! let (dataset, _) = synth::generate(&synth::SynthConfig::tiny());
//! let split = CrossingCitySplit::build(&dataset, CityId(1));
//!
//! // Train the full model.
//! let mut model = STTransRec::new(&dataset, &split, ModelConfig::test_small());
//! model.fit(&dataset);
//!
//! // Evaluate under the paper's 100-negative protocol.
//! let report = evaluate(&model, &dataset, &split, &EvalConfig::default());
//! println!("{report}");
//!
//! // Recommend for a first-time visitor.
//! let user = split.test_users[0];
//! for rec in recommend_top_k(&model, &dataset, user, split.target_city, 5, &[]) {
//!     println!("{:?} score {:.3}", rec.poi, rec.score);
//! }
//! ```

#![warn(missing_docs)]

pub use st_baselines as baselines;
pub use st_data as data;
pub use st_eval as eval;
pub use st_geo as geo;
pub use st_tensor as tensor;
pub use st_transrec_core as core;

/// The types most applications need, in one import.
pub mod prelude {
    pub use st_data::synth;
    pub use st_data::{
        Checkin, City, CityId, CrossingCitySplit, Dataset, DatasetStats, Poi, PoiId,
        TextualContextGraph, UserId, WordId,
    };
    pub use st_eval::{evaluate, EvalConfig, Metric, MetricReport, Scorer};
    pub use st_transrec_core::{
        recommend_top_k, CityResampler, MmdEstimator, ModelConfig, ParallelTrainer, Recommendation,
        STTransRec, Variant,
    };
}
